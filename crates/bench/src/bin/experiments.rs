//! Regenerates every table and analytic figure of the paper's evaluation.
//!
//! Usage: `cargo run --release -p ghs-bench --bin experiments [-- --exp <id>]`
//! where `<id>` is one of the experiment identifiers listed in
//! EXPERIMENTS.md (`table1`, `table2`, `table3`, `fig2`, `fig3`, `crossover`,
//! `hubo-scaling`, `be`, `chem-exact`, `chem-trotter`, `fdm-scaling`,
//! `fdm-verify`, `qlsp`, `measurement`, `ablation-complex`, `mpf`, `gas`,
//! `gradients`, `noisy-vqe`). Without a filter every experiment runs.

use ghs_bench::{fmt_f, print_table};
use ghs_chemistry::{
    h2_sto3g, hubbard_chain, run_vqe, transition_resources, trotter_error_sweep, uccsd_pool,
    ElectronicTransition,
};
use ghs_circuit::LadderStyle;
use ghs_core::backend::{Backend, FusedStatevector};
use ghs_core::{
    block_encode_term, direct_product_formula, direct_term_circuit, mpf_state_error, state_error,
    term_lcu_unitary_count, ComplexCoefficientMode, DirectOptions, NonHermitianOperator,
    ProductFormula, TermMeasurement,
};
use ghs_fdm::{
    fdm_block_encoding_table, fdm_scaling_table, fdm_simulation_errors, laplacian_1d,
    two_node_line_operator, BoundaryCondition, TwoLineParams,
};
use ghs_hubo::{
    cost_register_circuit, crossover_table, decode_assignment, decode_value,
    grover_adaptive_search, sparse_scaling_table, table3_rows, HuboProblem,
};
use ghs_math::{c64, expm_multiply_minus_i_theta, vec_distance, Complex64};
use ghs_operators::{component_transition_string, HermitianTerm, ScbOp, ScbString};
use ghs_statevector::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let filter = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let run = |id: &str| filter.as_deref().is_none_or(|f| f == id);

    println!("Gate-Efficient Hamiltonian Simulation & Block-Encoding — experiment reproduction");
    if let Some(f) = &filter {
        println!("(filtered to experiment `{f}`)");
    }

    if run("table1") {
        exp_table1();
    }
    if run("table2") {
        exp_table2();
    }
    if run("table3") {
        exp_table3();
    }
    if run("fig2") {
        exp_fig2();
    }
    if run("fig3") {
        exp_fig3();
    }
    if run("crossover") {
        exp_crossover();
    }
    if run("hubo-scaling") {
        exp_hubo_scaling();
    }
    if run("be") {
        exp_block_encoding();
    }
    if run("chem-exact") {
        exp_chem_exact();
    }
    if run("chem-trotter") {
        exp_chem_trotter();
    }
    if run("fdm-scaling") {
        exp_fdm_scaling();
    }
    if run("fdm-verify") {
        exp_fdm_verify();
    }
    if run("qlsp") {
        exp_qlsp();
    }
    if run("measurement") {
        exp_measurement();
    }
    if run("ablation-complex") {
        exp_ablation_complex_mode();
    }
    if run("mpf") {
        exp_multi_product_formula();
    }
    if run("gas") {
        exp_grover_adaptive_search();
    }
    if run("gradients") {
        exp_gradient_engine();
    }
    if run("noisy-vqe") {
        exp_noisy_vqe();
    }
}

/// EX5 — noisy VQE with error mitigation: the optimised H₂/STO-3G UCCSD
/// energy under a depolarizing Kraus channel, comparing the exact
/// density-matrix oracle, the stochastic trajectory ensemble, and global-fold
/// zero-noise extrapolation (λ = 1, 3, 5, Richardson) at every strength.
fn exp_noisy_vqe() {
    use ghs_chemistry::uccsd_circuit;
    use ghs_core::backend::{DensityMatrixBackend, InitialState, TrajectoryNoise};
    use ghs_core::{zero_noise_extrapolation, ExtrapolationMethod};
    use ghs_operators::NoiseModel;

    let model = h2_sto3g();
    let opts = DirectOptions::linear();
    let mut rng = StdRng::seed_from_u64(7);
    let vqe = run_vqe(&model, &opts, 1, 200, &mut rng);
    let pool = uccsd_pool(&model);
    let circuit = uccsd_circuit(&model, &pool, &vqe.thetas, &opts);
    let observable = model.grouped_observable();
    let zero = InitialState::ZeroState;
    let ideal = FusedStatevector
        .expectation(&zero, &circuit, &observable)
        .unwrap()
        + model.energy_offset;

    let rows: Vec<Vec<String>> = [0.0, 0.001, 0.002, 0.005, 0.01, 0.02]
        .iter()
        .map(|&p| {
            let noise = NoiseModel::depolarizing(p);
            let density = DensityMatrixBackend::new(noise.clone());
            let raw =
                density.expectation(&zero, &circuit, &observable).unwrap() + model.energy_offset;
            let ensemble = TrajectoryNoise::new(noise, 64, 2026)
                .expectation(&zero, &circuit, &observable)
                .unwrap()
                + model.energy_offset;
            let zne = zero_noise_extrapolation(
                &density,
                &zero,
                &circuit,
                &observable,
                &[1, 3, 5],
                ExtrapolationMethod::Richardson,
            )
            .unwrap()
            .mitigated
                + model.energy_offset;
            vec![
                format!("{p:.3}"),
                format!("{raw:+.8}"),
                format!("{ensemble:+.8}"),
                format!("{zne:+.8}"),
                fmt_f((raw - ideal).abs()),
                fmt_f((zne - ideal).abs()),
            ]
        })
        .collect();
    print_table(
        &format!("EX5 — noisy H2 VQE, raw vs mitigated (noiseless E = {ideal:+.8} Ha)"),
        &[
            "p",
            "exact noisy",
            "trajectory",
            "ZNE",
            "raw err",
            "ZNE err",
        ],
        &rows,
    );
}

/// EX4 — adjoint-mode gradient engine: gradient-based VQE and QAOA through
/// the shared `ghs_core::optimize` path, plus an adjoint-vs-shift
/// cross-check on the UCCSD ansatz.
fn exp_gradient_engine() {
    use ghs_chemistry::uccsd_parameterized;
    use ghs_core::parameter_shift_gradient;
    use ghs_hubo::{optimize_qaoa, qaoa_parameterized, random_sparse_hubo, SeparatorStrategy};
    use ghs_statevector::GroupedPauliSum;

    // Adjoint vs parameter-shift on the H₂ UCCSD ansatz.
    let model = h2_sto3g();
    let pool = uccsd_pool(&model);
    let ansatz = uccsd_parameterized(&model, &pool, &DirectOptions::linear());
    let observable = model.grouped_observable();
    let zero = ghs_core::InitialState::ZeroState;
    let thetas: Vec<f64> = (0..pool.len()).map(|k| 0.05 + 0.04 * k as f64).collect();
    let backend = FusedStatevector;
    let (energy, adjoint) = backend
        .expectation_gradient(&zero, &ansatz, &thetas, &observable)
        .expect("UCCSD ansatz runs on the fused backend");
    let (_, shift) = parameter_shift_gradient(&backend, &zero, &ansatz, &thetas, &observable)
        .expect("UCCSD ansatz runs on the fused backend");
    let rows: Vec<Vec<String>> = pool
        .iter()
        .zip(adjoint.iter().zip(&shift))
        .map(|(exc, (a, s))| {
            vec![
                exc.label.clone(),
                format!("{a:.10}"),
                format!("{s:.10}"),
                format!("{:.2e}", (a - s).abs()),
            ]
        })
        .collect();
    print_table(
        "EX4 — adjoint vs parameter-shift gradients, H₂ UCCSD ansatz",
        &["excitation", "adjoint dE/dθ", "shift dE/dθ", "|Δ|"],
        &rows,
    );
    println!("energy at probe point: {energy:.8} Ha (offset included: no)");

    // Gradient-based VQE and QAOA through the shared optimizer.
    let mut rng = StdRng::seed_from_u64(7);
    let vqe = run_vqe(&model, &DirectOptions::linear(), 1, 200, &mut rng);
    let fci = model.exact_ground_energy(3000);
    let mut rng = StdRng::seed_from_u64(11);
    let problem = random_sparse_hubo(8, 3, 16, &mut rng);
    let qaoa_ansatz = qaoa_parameterized(&problem, 3, SeparatorStrategy::Direct);
    let qaoa = optimize_qaoa(&problem, 3, SeparatorStrategy::Direct, 2, 120, &mut rng);
    let cost_terms = GroupedPauliSum::new(&problem.to_pauli_sum()).num_terms();
    print_table(
        "EX4b — gradient-based variational drivers (Adam + adjoint)",
        &["quantity", "value"],
        &[
            vec!["VQE energy (H₂)".into(), format!("{:.8} Ha", vqe.energy)],
            vec![
                "|VQE − FCI|".into(),
                format!("{:.2e} Ha", (vqe.energy - fci).abs()),
            ],
            vec![
                "VQE gradient evaluations".into(),
                vqe.evaluations.to_string(),
            ],
            vec![
                "QAOA parameters (3 layers)".into(),
                qaoa_ansatz.num_params().to_string(),
            ],
            vec!["QAOA separator cost terms".into(), cost_terms.to_string()],
            vec!["QAOA energy".into(), fmt_f(qaoa.energy)],
            vec!["QAOA optimum".into(), fmt_f(qaoa.optimal_cost)],
            vec![
                "P(optimum)".into(),
                format!("{:.3}", qaoa.optimum_probability),
            ],
        ],
    );
}

/// E01 — Table I: SCB operators and their Pauli mappings.
fn exp_table1() {
    let rows: Vec<Vec<String>> = ScbOp::ALL
        .iter()
        .map(|op| {
            let expansion = op
                .pauli_expansion()
                .iter()
                .map(|(c, p)| format!("({})·{:?}", c, p))
                .collect::<Vec<_>>()
                .join(" + ");
            vec![op.symbol().to_string(), format!("{}", expansion)]
        })
        .collect();
    print_table(
        "E01 / Table I — Single Component Basis → Pauli mapping",
        &["operator", "Pauli expansion"],
        &rows,
    );
}

/// E02 — Table II: single component transitions from bit strings.
fn exp_table2() {
    let (a, b, n) = (1222usize, 1145usize, 11usize);
    let s = component_transition_string(a, b, n);
    let rows: Vec<Vec<String>> = (0..n)
        .map(|q| {
            vec![
                q.to_string(),
                format!("{}", (a >> (n - 1 - q)) & 1),
                format!("{}", (b >> (n - 1 - q)) & 1),
                s.op(q).symbol().to_string(),
            ]
        })
        .collect();
    print_table(
        "E02 / Table II — |bin[1222]⟩⟨bin[1145]| component operators",
        &["qubit", "bit of a", "bit of b", "operator"],
        &rows,
    );
}

/// E03 — Table III: first three orders of HUBO primitives, both strategies.
fn exp_table3() {
    let rows: Vec<Vec<String>> = table3_rows()
        .iter()
        .map(|r| {
            let census = |c: &ghs_hubo::GateCensus| {
                let mut parts: Vec<String> = c
                    .iter()
                    .filter(|(k, _)| k.as_str() != "global")
                    .map(|(k, v)| format!("{v}×{k}"))
                    .collect();
                parts.sort();
                parts.join(", ")
            };
            vec![r.primitive.clone(), census(&r.usual), census(&r.direct)]
        })
        .collect();
    print_table(
        "E03 / Table III — HUBO primitives: usual vs direct gate census",
        &["primitive", "usual strategy", "direct strategy"],
        &rows,
    );
}

/// E04 — Fig. 2: the 15-qubit mixed-family term.
fn exp_fig2() {
    let ops = vec![
        ScbOp::N,
        ScbOp::M,
        ScbOp::M,
        ScbOp::X,
        ScbOp::Y,
        ScbOp::SigmaDag,
        ScbOp::N,
        ScbOp::Sigma,
        ScbOp::Sigma,
        ScbOp::Sigma,
        ScbOp::SigmaDag,
        ScbOp::Y,
        ScbOp::Z,
        ScbOp::SigmaDag,
        ScbOp::Sigma,
    ];
    let term = HermitianTerm::paired(Complex64::ONE, ScbString::new(ops));
    let theta = 0.37;
    let mut rows = Vec::new();
    for (label, opts) in [
        ("linear ladders", DirectOptions::linear()),
        ("pyramidal ladders", DirectOptions::pyramidal()),
    ] {
        let circuit = direct_term_circuit(&term, theta, &opts);
        let counts = circuit.counts();
        // Verify on a random state against the sparse exponential.
        let sparse = term.sparse_matrix();
        let mut rng = StdRng::seed_from_u64(4);
        let psi = StateVector::random_state(15, &mut rng);
        let evolved = FusedStatevector
            .run(&ghs_core::InitialState::from(&psi), &circuit)
            .expect("dense backends run term circuits");
        let exact = expm_multiply_minus_i_theta(&sparse, theta, psi.amplitudes());
        let err = vec_distance(evolved.amplitudes(), &exact);
        rows.push(vec![
            label.to_string(),
            counts.rotations.to_string(),
            counts.two_qubit.to_string(),
            counts.multi_controlled.to_string(),
            counts.depth.to_string(),
            fmt_f(err),
        ]);
    }
    rows.push(vec![
        "usual strategy (fragments)".into(),
        term.string.pauli_fragment_count().to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    print_table(
        "E04 / Fig. 2 — 15-qubit term: direct construction vs 2048-fragment usual expansion",
        &[
            "variant",
            "rotations",
            "2q gates",
            "multi-ctrl",
            "depth",
            "state error",
        ],
        &rows,
    );
}

/// E05 — Fig. 3 / 25: linear vs pyramidal ladder depth.
fn exp_fig3() {
    let rows: Vec<Vec<String>> = (2..=20usize)
        .step_by(3)
        .map(|k| {
            let qubits: Vec<(usize, u8)> = (0..k).map(|q| (q, (q % 2) as u8)).collect();
            let lin = ghs_circuit::transition_ladder(k, &qubits, LadderStyle::Linear);
            let pyr = ghs_circuit::transition_ladder(k, &qubits, LadderStyle::Pyramidal);
            vec![
                k.to_string(),
                lin.circuit.len().to_string(),
                lin.circuit.depth().to_string(),
                pyr.circuit.len().to_string(),
                pyr.circuit.depth().to_string(),
            ]
        })
        .collect();
    print_table(
        "E05 / Fig. 3 & 25 — transition-ladder CX count and depth",
        &[
            "width",
            "linear CX",
            "linear depth",
            "pyramidal CX",
            "pyramidal depth",
        ],
        &rows,
    );
}

/// E06 — §V-A crossover of the dense-term two-qubit counts.
fn exp_crossover() {
    let rows: Vec<Vec<String>> = crossover_table(16)
        .iter()
        .map(|r| {
            vec![
                r.order.to_string(),
                r.usual_two_qubit.to_string(),
                r.direct_two_qubit
                    .map(|d| d.to_string())
                    .unwrap_or("-".into()),
                r.usual_fragments.to_string(),
                if r.direct_wins { "direct" } else { "usual" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "E06 / §V-A — dense order-n term: two-qubit gates (paper threshold n > 7; formula as printed crosses at n = 6)",
        &["order", "usual 2q", "direct 2q (ancilla model)", "usual fragments", "winner"],
        &rows,
    );
}

/// E07 — sparse high-order HUBO scaling.
fn exp_hubo_scaling() {
    let rows: Vec<Vec<String>> = sparse_scaling_table(&[4, 6, 8, 10, 12, 14, 16], 3)
        .iter()
        .map(|r| {
            vec![
                r.order.to_string(),
                r.num_terms.to_string(),
                r.direct_rotations.to_string(),
                r.usual_rotations.to_string(),
                r.usual_two_qubit.to_string(),
            ]
        })
        .collect();
    print_table(
        "E07 / §V-A — sparse high-order HUBO (3 monomials): exponential reduction of the direct strategy",
        &["order", "monomials", "direct rotations", "usual rotations", "usual 2q gates"],
        &rows,
    );
}

/// E08 — §IV block-encoding: ≤6 unitaries per term, verified.
fn exp_block_encoding() {
    let cases: Vec<(&str, HermitianTerm)> = vec![
        (
            "Pauli string X⊗Z",
            HermitianTerm::bare(0.8, ScbString::new(vec![ScbOp::X, ScbOp::Z])),
        ),
        (
            "projector n⊗m⊗Z",
            HermitianTerm::bare(-1.2, ScbString::new(vec![ScbOp::N, ScbOp::M, ScbOp::Z])),
        ),
        (
            "transition σ†⊗σ⊗Y",
            HermitianTerm::paired(
                c64(0.7, 0.0),
                ScbString::new(vec![ScbOp::SigmaDag, ScbOp::Sigma, ScbOp::Y]),
            ),
        ),
        (
            "full family n⊗σ†⊗X⊗σ⊗m",
            HermitianTerm::paired(
                c64(0.4, 0.0),
                ScbString::new(vec![
                    ScbOp::N,
                    ScbOp::SigmaDag,
                    ScbOp::X,
                    ScbOp::Sigma,
                    ScbOp::M,
                ]),
            ),
        ),
    ];
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|(label, term)| {
            let be = block_encode_term(term, LadderStyle::Linear);
            vec![
                label.to_string(),
                term_lcu_unitary_count(term).to_string(),
                be.num_ancillas.to_string(),
                fmt_f(be.normalization),
                fmt_f(be.verification_error(&term.matrix())),
            ]
        })
        .collect();
    print_table(
        "E08 / §IV — per-term block-encodings (paper bound: ≤ 6 unitaries)",
        &["term", "unitaries", "ancillas", "λ", "‖block·λ − H‖"],
        &rows,
    );
}

/// E09 — §V-B1: exact individual electronic transitions.
fn exp_chem_exact() {
    let n = 6;
    let cases = [
        ElectronicTransition::one_body(0.42, 0, 1, n),
        ElectronicTransition::one_body(0.42, 0, 5, n),
        ElectronicTransition::two_body(-0.31, 0, 1, 2, 3, n).unwrap(),
        ElectronicTransition::two_body(0.17, 0, 2, 3, 5, n).unwrap(),
    ];
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|t| {
            let res = transition_resources(t, &DirectOptions::linear());
            let circ = t.evolution_circuit(0.61, &DirectOptions::linear());
            let u = ghs_statevector::circuit_unitary(&circ);
            let err = u.distance(&ghs_math::expm_minus_i_theta(&t.term.matrix(), 0.61));
            vec![
                t.label.clone(),
                res.rotations.to_string(),
                res.two_qubit.to_string(),
                res.usual_fragments.to_string(),
                fmt_f(err),
            ]
        })
        .collect();
    print_table(
        "E09 / §V-B1 — individual electronic transitions (direct circuits are exact)",
        &[
            "transition",
            "rotations",
            "2q gates",
            "usual fragments",
            "unitary error",
        ],
        &rows,
    );
}

/// E10 — §V-B2: full-Hamiltonian Trotter error, direct vs usual grouping.
fn exp_chem_trotter() {
    for model in [hubbard_chain(2, 1.0, 2.0, false), h2_sto3g()] {
        let rows: Vec<Vec<String>> =
            trotter_error_sweep(&model, 0.5, &[1, 2, 4, 8], ProductFormula::First)
                .iter()
                .map(|r| {
                    vec![
                        r.steps.to_string(),
                        fmt_f(r.direct_error),
                        fmt_f(r.direct_energy_error),
                        r.direct_factors.to_string(),
                        fmt_f(r.usual_error),
                        fmt_f(r.usual_energy_error),
                        r.usual_factors.to_string(),
                    ]
                })
                .collect();
        print_table(
            &format!(
                "E10 / §V-B2 — first-order Trotter error, {} (t = 0.5)",
                model.name
            ),
            &[
                "steps",
                "direct error",
                "direct ⟨H⟩ err",
                "direct factors",
                "usual error",
                "usual ⟨H⟩ err",
                "usual factors",
            ],
            &rows,
        );
    }
}

/// E11 — Eq. 23: FDM two-qubit-gate scaling.
fn exp_fdm_scaling() {
    let rows: Vec<Vec<String>> = fdm_scaling_table(&[1, 2, 3, 4, 5, 6, 8, 10])
        .iter()
        .map(|r| {
            vec![
                r.k.to_string(),
                r.n.to_string(),
                r.terms.to_string(),
                r.rotations.to_string(),
                r.ladder_two_qubit.to_string(),
                r.total_controls.to_string(),
                r.eq23_prediction.to_string(),
            ]
        })
        .collect();
    print_table(
        "E11 / Eq. 23 — 1-D neighbour operator: gate counts vs matrix size",
        &[
            "k",
            "N",
            "terms",
            "rotations",
            "ladder 2q",
            "rotation controls",
            "(log²N+logN)/2",
        ],
        &rows,
    );
}

/// E12 — §V-C: FDM decomposition correctness, boundary conditions, BE.
fn exp_fdm_verify() {
    let mut rows = Vec::new();
    for bc in [
        BoundaryCondition::Dirichlet,
        BoundaryCondition::Neumann,
        BoundaryCondition::Periodic,
    ] {
        for k in [2usize, 3] {
            let h = laplacian_1d(k, 0.5, bc);
            let reference = ghs_fdm::assemble_laplacian_1d(k, 0.5, bc);
            rows.push(vec![
                format!("1-D Laplacian {bc:?}, N = {}", 1 << k),
                h.num_terms().to_string(),
                fmt_f(h.matrix().distance(&reference)),
            ]);
        }
    }
    let p = TwoLineParams::poisson();
    let two_line = two_node_line_operator(2, &p);
    rows.push(vec![
        "paper two-node-line Poisson (8×8)".into(),
        two_line.num_terms().to_string(),
        fmt_f(
            two_line
                .matrix()
                .distance(&ghs_fdm::assemble_two_node_line(2, &p)),
        ),
    ]);
    print_table(
        "E12 / §V-C — FDM decompositions vs classical assembly",
        &["operator", "SCB terms", "‖decomposition − reference‖"],
        &rows,
    );

    let be_rows: Vec<Vec<String>> = fdm_block_encoding_table(&[1, 2, 3], 3)
        .iter()
        .map(|r| {
            vec![
                (1usize << r.k).to_string(),
                r.unitaries.to_string(),
                r.ancillas.to_string(),
                fmt_f(r.normalization),
                r.verification_error.map(fmt_f).unwrap_or("-".into()),
            ]
        })
        .collect();
    print_table(
        "E12b / §V-C — block-encoding of the 1-D Dirichlet Laplacian",
        &["N", "unitaries", "ancillas", "λ", "error"],
        &be_rows,
    );

    let sim_rows: Vec<Vec<String>> = fdm_simulation_errors(3, 0.7, &[1, 2, 4, 8])
        .iter()
        .map(|(s, e)| vec![s.to_string(), fmt_f(*e)])
        .collect();
    print_table(
        "E12c — Hamiltonian simulation of the 8-node Laplacian (2nd-order formula)",
        &["steps", "unitary error"],
        &sim_rows,
    );
}

/// E13 — §V-E: non-Hermitian dilation term counts.
fn exp_qlsp() {
    let mut a = NonHermitianOperator::new(3);
    a.push(0, 5, c64(1.0, 0.5));
    a.push(2, 2, c64(-0.5, 0.25));
    a.push(7, 1, c64(0.75, 0.0));
    a.push(4, 6, c64(0.0, -0.6));
    let rows = vec![
        vec!["components of A".into(), a.components().len().to_string()],
        vec![
            "SCB terms of σ†₀⊗A + h.c.".into(),
            a.dilated_term_count().to_string(),
        ],
        vec![
            "Pauli fragments of the same dilation".into(),
            a.dilated_pauli_fragment_count().to_string(),
        ],
        vec![
            "fragment / term ratio (paper: ≥ 4)".into(),
            format!(
                "{:.1}",
                a.dilated_pauli_fragment_count() as f64 / a.dilated_term_count() as f64
            ),
        ],
    ];
    print_table(
        "E13 / §V-E — non-Hermitian dilation for QLSP",
        &["quantity", "value"],
        &rows,
    );
}

/// E14 — Annex C: expectation values with fewer observables.
fn exp_measurement() {
    let term = HermitianTerm::paired(
        c64(0.25, 0.0),
        ScbString::new(vec![
            ScbOp::SigmaDag,
            ScbOp::SigmaDag,
            ScbOp::Sigma,
            ScbOp::Sigma,
        ]),
    );
    let meas = TermMeasurement::new(&term, LadderStyle::Linear);
    let mut rng = StdRng::seed_from_u64(21);
    let state = StateVector::random_state(4, &mut rng);
    let exact = state.expectation_dense(&term.matrix()).re;
    let single_setting = meas.exact(&state);
    let sampled = meas.estimate(&state, 40_000, &mut rng);
    let usual_settings = TermMeasurement::usual_setting_count(&term);
    let grouped_settings = TermMeasurement::grouped_setting_count(&term);
    let rows = vec![
        vec!["⟨ψ|H|ψ⟩ exact".into(), fmt_f(exact)],
        vec![
            "single-setting (infinite shots)".into(),
            fmt_f(single_setting),
        ],
        vec!["single-setting (40k shots)".into(), fmt_f(sampled)],
        vec![
            "Pauli settings needed by the usual approach".into(),
            usual_settings.to_string(),
        ],
        vec![
            "usual settings after QWC grouping".into(),
            grouped_settings.to_string(),
        ],
        vec!["direct settings needed".into(), "1".into()],
    ];
    print_table(
        "E14 / Annex C — two-body expectation value with fewer observables",
        &["quantity", "value"],
        &rows,
    );
}

/// EX1 — ablation: exact-axis vs the paper's RX·RY split for complex
/// weights (§III-A).
fn exp_ablation_complex_mode() {
    let term = HermitianTerm::paired(
        c64(0.3, 0.7),
        ScbString::new(vec![ScbOp::SigmaDag, ScbOp::Z, ScbOp::Sigma, ScbOp::N]),
    );
    let theta = 0.8;
    let mut rows = Vec::new();
    for (label, mode) in [
        (
            "exact tilted-axis rotation (extension)",
            ComplexCoefficientMode::ExactAxis,
        ),
        (
            "paper RX·RY split (§III-A)",
            ComplexCoefficientMode::PaperSplit,
        ),
    ] {
        let opts = DirectOptions {
            ladder_style: LadderStyle::Linear,
            complex_mode: mode,
        };
        let circuit = direct_term_circuit(&term, theta, &opts);
        let u = ghs_statevector::circuit_unitary(&circuit);
        let err = u.distance(&ghs_math::expm_minus_i_theta(&term.matrix(), theta));
        rows.push(vec![
            label.to_string(),
            circuit.counts().rotations.to_string(),
            fmt_f(err),
        ]);
    }
    print_table(
        "EX1 / §III-A ablation — complex-weight handling",
        &["mode", "rotations", "unitary error"],
        &rows,
    );
}

/// EX2 — Multi-Product Formula (§VI-B) against its ingredient formulas.
fn exp_multi_product_formula() {
    let mut h = ghs_operators::ScbHamiltonian::new(3);
    h.push_bare(0.9, ScbString::with_op_on(3, ScbOp::X, &[0]));
    h.push_bare(0.7, ScbString::with_op_on(3, ScbOp::Z, &[0]));
    h.push_paired(
        c64(0.4, 0.0),
        ScbString::new(vec![ScbOp::SigmaDag, ScbOp::Sigma, ScbOp::N]),
    );
    h.push_bare(-0.5, ScbString::new(vec![ScbOp::I, ScbOp::N, ScbOp::N]));
    let t = 0.9;
    let opts = DirectOptions::linear();
    let mut rng = StdRng::seed_from_u64(12);
    let psi = StateVector::random_state(3, &mut rng);
    let sparse = h.sparse_matrix();
    let mut rows = Vec::new();
    for steps in [1usize, 2, 3] {
        let c = direct_product_formula(&h, t, steps, ProductFormula::First, &opts);
        rows.push(vec![
            format!("first-order, {steps} step(s)"),
            fmt_f(state_error(&c, &sparse, t, &psi)),
        ]);
    }
    rows.push(vec![
        "MPF over {1,2,3} (Richardson weights)".into(),
        fmt_f(mpf_state_error(&h, t, &[1, 2, 3], &opts, &psi)),
    ]);
    print_table(
        "EX2 / §VI-B — Multi-Product Formula error vs its ingredients",
        &["formula", "state error"],
        &rows,
    );
}

/// EX3 — Grover Adaptive Search over a HUBO cost register (§V-A-1).
fn exp_grover_adaptive_search() {
    use ghs_service::{JobOutput, JobSpec, Service};
    use std::sync::Arc;

    let mut p = HuboProblem::new(3);
    p.add_term(2.0, &[0]);
    p.add_term(-3.0, &[1, 2]);
    p.add_term(1.0, &[0, 1, 2]);
    let m = 4;
    // Deterministic cost readout for every assignment: eight jobs on one
    // shared readout circuit, so the service's structural plan cache fuses
    // it once instead of once per assignment. Seven value bits keep every
    // integer cost exact and put the 10-qubit register on the fused path
    // (below the fusion crossover the service applies gates directly and
    // has nothing to cache).
    let readout_bits = 7;
    let circuit = Arc::new(cost_register_circuit(&p, readout_bits, 0.0));
    let service = Service::new(Default::default());
    let readouts: Vec<JobSpec> = (0..(1usize << 3))
        .map(|x| JobSpec::probabilities(circuit.clone()).starting_at(x << readout_bits))
        .collect();
    let results = service.run_batch(&readouts).expect("valid readout jobs");
    // Seven of the eight jobs must have been served from the cached plan.
    debug_assert!(service.cache_stats().plan_hits >= 7);
    let mut rows = Vec::new();
    for (x, result) in results.iter().enumerate() {
        let JobOutput::Probabilities(probs) = &result.output else {
            unreachable!("probability jobs return probability vectors");
        };
        let outcome = probs.iter().position(|&pr| pr > 0.99).unwrap();
        rows.push(vec![
            format!("{x:03b}"),
            fmt_f(p.evaluate(x)),
            decode_value(outcome, 3, readout_bits).to_string(),
            format!("{:03b}", decode_assignment(outcome, 3, readout_bits)),
        ]);
    }
    print_table(
        "EX3 / §V-A-1 — QPE-style cost register readout (direct phase separators)",
        &[
            "assignment",
            "classical cost",
            "register readout",
            "assignment readback",
        ],
        &rows,
    );
    let mut rng = StdRng::seed_from_u64(17);
    let result = grover_adaptive_search(&p, m, 8, &mut rng);
    let (best, best_cost) = p.brute_force_minimum();
    print_table(
        "EX3b — Grover Adaptive Search result",
        &["quantity", "value"],
        &[
            vec![
                "best assignment found".into(),
                format!("{:03b}", result.best_assignment),
            ],
            vec!["its cost".into(), fmt_f(result.best_cost)],
            vec![
                "brute-force optimum".into(),
                format!("{best:03b} (cost {})", fmt_f(best_cost)),
            ],
            vec![
                "Grover iterations used".into(),
                result.total_iterations.to_string(),
            ],
        ],
    );
}
