//! Microbenchmark harness for the fused gate-application engine, the
//! batched shot-execution engine and the matrix-free expectation engine.
//!
//! Runs a fixed set of representative workloads (QFT, Trotter step, QAOA
//! layer, CX ladders, and a deep 16-qubit Trotter circuit) through both the
//! per-gate oracle path ([`StateVector::run_unfused`]) and the fused engine,
//! and reports wall time, gates/second and the fusion ratio as
//! machine-readable JSON (`BENCH.json`). Two batched-sampling workloads
//! (`qaoa_12_shots4096`, `noisy_trajectories_10`) compare the per-shot
//! oracle paths against the cached alias sampler / trajectory batching of
//! the backend layer, two expectation workloads (`uccsd_energy_h2`,
//! `qaoa_energy_12`) compare the sparse-matrix observable oracle against
//! the grouped matrix-free evaluator, and two gradient workloads
//! (`vqe_h2_gradient`, `qaoa_12_gradient`) compare the parameter-shift rule
//! against the adjoint engine at 20+ parameters, two stabilizer workloads
//! (`ghz_1024`, `syndrome_256`) compare per-shot tableau re-simulation
//! against the prepare-once collapse-clone sampler at Clifford scale, two
//! noise workloads (`noisy_vqe_h2`, `density_8`) compare converged
//! trajectory ensembles against the exact density-matrix oracle, and
//! one service workload
//! (`service_mixed_throughput`) runs a mixed VQE/QAOA/sampling job stream
//! through the batched job service cold-cache vs warm-cache, in jobs/sec;
//! for all of these the
//! `unfused`/`fused` columns are the oracle and optimized wall times. The
//! committed `bench/baseline.json` is refreshed from this output; CI fails
//! when a workload regresses against it (see [`compare_to_baseline`]) or
//! when its workload names drift from this registry
//! (see [`baseline_name_drift`]).

use ghs_chemistry::{h2_sto3g, uccsd_circuit, uccsd_pool};
use ghs_circuit::{exchange_count, Circuit, ParameterizedCircuit, QubitRelabeling};
use ghs_core::backend::{
    parameter_shift_gradient, Backend, DensityMatrixBackend, FusedStatevector, InitialState,
    PauliNoise, StabilizerBackend, TrajectoryNoise,
};
use ghs_core::{direct_product_formula, direct_term_circuit, DirectOptions, ProductFormula};
use ghs_hubo::{
    direct_phase_separator, qaoa_parameterized, random_sparse_hubo, HuboProblem, QaoaParameters,
    SeparatorStrategy,
};
use ghs_operators::NoiseModel;
use ghs_operators::{PauliSum, ScbHamiltonian, ScbOp, ScbString};
use ghs_service::{JobSpec, Service, ServiceConfig};
use ghs_statevector::{testkit, GroupedPauliSum, ShardedStateVector, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// What a workload measures: the `unfused`/`fused` columns of the report are
/// the slow-oracle and optimized wall times of the named comparison.
#[derive(Clone, Debug)]
pub enum WorkloadKind {
    /// Full-state circuit simulation: per-gate sweeps vs the fused engine.
    Circuit,
    /// Large-register circuit simulation: the **flat fused engine** (one
    /// full-state sweep per fused op — the memory-bound status quo above
    /// ~22 qubits) vs the **sharded engine** (hot qubits relabeled
    /// intra-shard, runs of shard-local ops cache-blocked per shard). Both
    /// paths produce bit-identical states; the columns compare flat-fused
    /// (unfused) against sharded (fused) wall time, so the per-gate oracle
    /// — minutes of wall time at 24 qubits — never runs.
    Sharded,
    /// Batched readout of a pre-computed state: per-shot cumulative re-sweep
    /// oracle vs the cached alias sampler (`O(shots·2^n)` vs
    /// `O(2^n + shots)`).
    Sampling {
        /// Number of measurement shots drawn.
        shots: usize,
    },
    /// Stochastic Pauli-noise sampling: a fresh trajectory per shot (oracle)
    /// vs a batch of trajectories feeding the cached alias sampler.
    NoisyTrajectories {
        /// Trajectories in the batched ensemble.
        trajectories: usize,
        /// Number of measurement shots drawn.
        shots: usize,
        /// Per-qubit depolarizing strength after each gate.
        depolarizing: f64,
    },
    /// Expectation-value evaluation of the workload's Pauli-sum observable
    /// on a pre-computed state: the status-quo per-evaluation path (sparse
    /// materialization of the observable + generic mat-vec + inner product,
    /// exactly what `energy_of_state`-style call sites paid before the
    /// matrix-free engine) vs the prepared grouped evaluator's single-sweep
    /// kernels.
    Expectation {
        /// Energy evaluations per timed repetition (a VQE/QAOA sweep's worth
        /// of work, so sub-millisecond kernels time above scheduler jitter).
        evals: usize,
        /// The Hermitian observable evaluated against the workload's evolved
        /// state.
        observable: PauliSum,
    },
    /// Full-gradient evaluation of a parameterized circuit's energy: the
    /// parameter-shift rule (two to four circuit executions **per bound
    /// gate**, the pre-adjoint status quo) vs the adjoint method (one
    /// forward + one reverse sweep + `O(P)` inner products), both through
    /// the fused statevector backend against a prepared grouped observable.
    Gradient {
        /// The differentiated circuit template.
        parameterized: ParameterizedCircuit,
        /// The parameter point the gradient is evaluated at.
        params: Vec<f64>,
        /// The Hermitian observable whose expectation is differentiated.
        observable: PauliSum,
        /// Gradient evaluations per timed repetition.
        evals: usize,
    },
    /// Clifford-scale shot sampling through the stabilizer tableau engine:
    /// a naive oracle that re-simulates the whole circuit on a fresh tableau
    /// for every shot vs the prepare-once path (one tableau build, then one
    /// collapse clone per shot). Registers far beyond dense reach — the
    /// dense engines never run; `gates_per_sec` reports **shots** per
    /// second through the prepared path.
    Stabilizer {
        /// Number of measurement shots drawn.
        shots: usize,
    },
    /// Noisy expectation values on small registers: the stochastic
    /// trajectory ensemble (`trajectories` seeded Kraus evolutions averaged
    /// — the Monte-Carlo status quo, with `O(1/√T)` statistical error) vs
    /// the density-matrix oracle (one vectorised superoperator evolution,
    /// exact). Below the density backend's register cap one `4ⁿ`-amplitude
    /// sweep replaces the whole ensemble *and* removes the sampling error;
    /// `gates_per_sec` reports ensemble **trajectories** replaced per
    /// second.
    Noise {
        /// The Kraus noise model both engines evolve under.
        model: NoiseModel,
        /// Ensemble size of the trajectory (oracle) column.
        trajectories: usize,
        /// The Hermitian observable both engines evaluate.
        observable: PauliSum,
    },
    /// Service-level throughput on a mixed job stream (VQE expectation,
    /// QAOA expectation, repeated sampling, gradients): the same batch
    /// through a **cold-cache** service (plan caching disabled — every job
    /// re-plans, re-prepares and re-builds, the per-execution status quo) vs
    /// a **pre-warmed** service whose structural plan cache serves fusion
    /// plans, prepared observables and sampling distributions. The
    /// `unfused`/`fused` columns are the cold and warm batch wall times and
    /// `gates_per_sec` reports warm **jobs** per second.
    Service {
        /// The mixed job stream executed per timed repetition.
        jobs: Vec<JobSpec>,
    },
}

/// One named benchmark workload.
pub struct Workload {
    /// Stable identifier used in `BENCH.json` and the baseline.
    pub name: String,
    /// The circuit to simulate.
    pub circuit: Circuit,
    /// Which oracle-vs-optimized comparison the workload times.
    pub kind: WorkloadKind,
}

/// Timing and fusion metrics of one workload.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadResult {
    /// Workload identifier.
    pub name: String,
    /// Register size.
    pub qubits: usize,
    /// Gate count of the source circuit.
    pub gates: usize,
    /// Fused operation count.
    pub fused_ops: usize,
    /// `gates / fused_ops`.
    pub fusion_ratio: f64,
    /// One-off cost of the fusion pass (milliseconds).
    pub fuse_ms: f64,
    /// Best-of-reps wall time of the per-gate path (milliseconds).
    pub unfused_ms: f64,
    /// Best-of-reps wall time of the fused path (milliseconds).
    pub fused_ms: f64,
    /// `unfused_ms / fused_ms`.
    pub speedup: f64,
    /// Source gates per second through the fused path.
    pub gates_per_sec: f64,
    /// Fused ops needing cross-shard gather/scatter exchanges at the
    /// 64-shard convention (6 shard-index qubits) **before** the qubit
    /// relabeling pass. Zero for registers narrower than 7 qubits.
    pub exchange_ops_before: usize,
    /// The same count **after** [`QubitRelabeling::for_sharding`] — the
    /// per-workload visibility of the relabeling pass's gain.
    pub exchange_ops_after: usize,
}

/// Shard-index qubits of the exchange-count convention recorded in
/// `BENCH.json`: 6 bits = the `GHS_SHARD_COUNT=64` determinism leg.
const EXCHANGE_SHARD_QUBITS: usize = 6;

/// The hopping-chain + on-site Hamiltonian used by the Trotter workloads
/// (and by the criterion benches): a representative mix of transition
/// (σ†/σ) and boolean (n) terms.
pub fn chain_hamiltonian(n: usize) -> ScbHamiltonian {
    let mut h = ScbHamiltonian::new(n);
    for q in 0..n - 1 {
        h.push_paired(
            ghs_math::c64(0.5, 0.0),
            ScbString::from_pairs(n, &[(q, ScbOp::SigmaDag), (q + 1, ScbOp::Sigma)]),
        );
    }
    for q in 0..n {
        h.push_bare(0.3, ScbString::with_op_on(n, ScbOp::N, &[q]));
    }
    h
}

/// A deep ladder workload: alternating forward/backward CX chains with RZ
/// layers between them, `layers` times. Public so the `scale_smoke` binary
/// (the CI memory-ceiling check) drives the exact `ladder_24` shape.
pub fn ladder_circuit(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for layer in 0..layers {
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c.rz(n - 1, 0.1 + 0.01 * layer as f64);
        for q in (0..n - 1).rev() {
            c.cx(q, q + 1);
        }
    }
    c
}

/// The GHZ-preparation circuit of the `ghz_1024` stabilizer workload: one
/// Hadamard and an `n−1`-long CX chain. Public so the stabilizer test suite
/// drives the exact CI workload shape.
pub fn ghz_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c
}

/// The repetition-code syndrome-extraction circuit of the `syndrome_256`
/// stabilizer workload: even qubits are data, odd qubits are ancillas;
/// every round entangles each ancilla with its two neighbouring data qubits
/// (CX data→ancilla) after a Hadamard layer on the data rail seeds
/// superposition. Pure Clifford by construction.
pub fn syndrome_circuit(n: usize, rounds: usize) -> Circuit {
    assert!(
        n >= 4 && n.is_multiple_of(2),
        "need an even data/ancilla interleave"
    );
    let mut c = Circuit::new(n);
    for q in (0..n).step_by(2) {
        c.h(q);
    }
    for _ in 0..rounds {
        for a in (1..n).step_by(2) {
            c.cx(a - 1, a);
            if a + 1 < n {
                c.cx(a + 1, a);
            }
        }
    }
    c
}

/// The random sparse order-3 HUBO instance of the QAOA workloads (fixed
/// seed, `2n` monomials).
fn qaoa_problem(n: usize) -> HuboProblem {
    let mut rng = StdRng::seed_from_u64(42);
    random_sparse_hubo(n, 3, 2 * n, &mut rng)
}

/// One QAOA sweep: direct keyed-phase separator for a random sparse HUBO
/// followed by the RX mixer layer, repeated `p` times.
fn qaoa_circuit(n: usize, p: usize) -> Circuit {
    let problem = qaoa_problem(n);
    let mut c = Circuit::new(n);
    for layer in 0..p {
        let gamma = 0.4 + 0.1 * layer as f64;
        let beta = 0.7 - 0.1 * layer as f64;
        c.append(&direct_phase_separator(&problem, gamma));
        for q in 0..n {
            c.rx(q, 2.0 * beta);
        }
    }
    c
}

/// The layered UCCSD gradient workload: the H₂/STO-3G excitation pool
/// repeated `layers` times with independent angles — 24 parameters at 4
/// qubits, the parameter-count regime (P ≥ 20) where the adjoint engine's
/// `O(1)`-simulations-per-gradient advantage dominates the shift rule's
/// `O(P)`.
fn layered_uccsd_ansatz(layers: usize) -> (ParameterizedCircuit, Vec<f64>, PauliSum) {
    let model = h2_sto3g();
    let pool = uccsd_pool(&model);
    let opts = DirectOptions::linear();
    let num_params = pool.len() * layers;
    let num_electrons = model.num_electrons;
    let n = model.num_qubits();
    let pc = ParameterizedCircuit::from_linear_template(num_params, |thetas| {
        let mut c = Circuit::new(n);
        for q in 0..num_electrons {
            c.x(q);
        }
        for layer in 0..layers {
            for (k, exc) in pool.iter().enumerate() {
                c.append(&direct_term_circuit(
                    &exc.term,
                    thetas[layer * pool.len() + k],
                    &opts,
                ));
            }
        }
        c
    });
    let params: Vec<f64> = (0..num_params).map(|i| 0.03 + 0.011 * i as f64).collect();
    (pc, params, model.pauli_sum())
}

/// The mixed job stream of the `service_mixed_throughput` workload: the
/// shape of a real variational/sampling frontend. Two concrete sampling
/// circuits, two shared templates and two observables fan out into 42 jobs —
/// every VQE/QAOA job rebinds angles on a shared template, every sampling job
/// repeats one of the concrete circuits with a fresh seed — so a warm plan
/// cache serves the whole stream from a handful of cached artifacts while a
/// cold service re-plans, re-executes and re-prepares per job.
pub fn service_job_stream() -> Vec<JobSpec> {
    let mut jobs = Vec::new();

    // 28 repeated-circuit sampling jobs over two distinct 12-qubit QAOA
    // states, distinct seeds: warm runs draw from two cached distributions
    // instead of re-fusing and re-executing the state per job.
    let sampler_a = Arc::new(qaoa_circuit(12, 2));
    for seed in 0..16u64 {
        jobs.push(JobSpec::sample(sampler_a.clone(), 1024).with_seed(seed));
    }
    let sampler_b = Arc::new(qaoa_circuit(12, 3));
    for seed in 0..12u64 {
        jobs.push(JobSpec::sample(sampler_b.clone(), 1024).with_seed(100 + seed));
    }

    // 6 H₂/STO-3G VQE energy evaluations on one shared two-layer UCCSD
    // template, parameters varying per job (an optimizer trace's shape).
    let (vqe_pc, vqe_params, vqe_obs) = layered_uccsd_ansatz(2);
    let vqe_pc = Arc::new(vqe_pc);
    let vqe_obs = Arc::new(vqe_obs);
    for step in 0..6 {
        let params: Vec<f64> = vqe_params.iter().map(|p| p + 0.005 * step as f64).collect();
        jobs.push(JobSpec::expectation(
            (vqe_pc.clone(), params),
            vqe_obs.clone(),
        ));
    }

    // 4 QAOA cost evaluations on a shared 10-qubit two-layer template.
    let problem = {
        let mut rng = StdRng::seed_from_u64(42);
        random_sparse_hubo(10, 3, 20, &mut rng)
    };
    let qaoa_pc = Arc::new(qaoa_parameterized(&problem, 2, SeparatorStrategy::Direct));
    let qaoa_obs = Arc::new(problem.to_pauli_sum());
    for step in 0..4 {
        let t = 0.05 * step as f64;
        jobs.push(JobSpec::expectation(
            (qaoa_pc.clone(), vec![0.4 + t, 0.45 + t, 0.7 - t, 0.65 - t]),
            qaoa_obs.clone(),
        ));
    }

    // 4 adjoint-gradient jobs on the VQE template.
    for step in 0..4 {
        let params: Vec<f64> = vqe_params.iter().map(|p| p + 0.02 * step as f64).collect();
        jobs.push(JobSpec::gradient(vqe_pc.clone(), params, vqe_obs.clone()));
    }
    jobs
}

/// The standard workload set recorded in `BENCH.json`.
///
/// * `qft_16` — full QFT with final swaps.
/// * `trotter_step_14` — one first-order Trotter step of the hopping chain.
/// * `qaoa_layer_16` — two QAOA sweeps of a sparse order-3 HUBO.
/// * `ladder_12/16/20` — deep CX-ladder/RZ circuits at growing width.
/// * `ladder_24` — the 24-qubit ladder: flat fused engine vs the sharded
///   engine (the CI scale gate requires ≥2x sharded-vs-flat).
/// * `deep_22` — two Trotter steps at 22 qubits, the crossover width, same
///   flat-vs-sharded comparison.
/// * `deep_16` — four Trotter steps at 16 qubits, the deep-circuit
///   reference the CI regression gate watches most closely.
/// * `random_16` — unstructured random circuit (fusion worst case).
/// * `qaoa_12_shots4096` — 4096-shot readout of a 12-qubit QAOA state:
///   per-shot re-sweep oracle vs the cached alias sampler.
/// * `noisy_trajectories_10` — 256 shots from a 10-trajectory Pauli-noise
///   ensemble vs one fresh trajectory per shot.
/// * `uccsd_energy_h2` — 256 H₂/STO-3G energy evaluations of a UCCSD
///   ansatz state: sparse-materialization-per-evaluation oracle vs the
///   prepared matrix-free grouped engine.
/// * `qaoa_energy_12` — 8 cost-expectation evaluations of the 12-qubit QAOA
///   state against its ~200-fragment Ising observable, same comparison.
/// * `vqe_h2_gradient` — full 24-parameter gradients of an 8-layer UCCSD
///   ansatz energy: parameter-shift oracle vs the adjoint engine.
/// * `qaoa_12_gradient` — full 20-parameter gradients of a 10-layer
///   12-qubit QAOA cost (each `γ` binds every separator phase of its
///   layer), same comparison.
/// * `ghz_1024` — 64 seeded shots from a 1024-qubit GHZ state through the
///   stabilizer tableau engine: per-shot full re-simulation oracle vs the
///   prepare-once + collapse-clone sampler (CI gates an absolute
///   shots/sec floor via `--min-gates-per-sec`).
/// * `syndrome_256` — 256 shots from a 4-round repetition-code
///   syndrome-extraction circuit on 256 qubits, same comparison and gate.
/// * `service_mixed_throughput` — a 42-job mixed VQE/QAOA/sampling stream
///   through the batched job service: cold-cache vs pre-warmed structural
///   plan cache, in **jobs/sec** (the service-level gate; CI requires ≥5x).
pub fn standard_workloads() -> Vec<Workload> {
    let all = |n: usize| (0..n).collect::<Vec<_>>();
    let mut w = Vec::new();
    w.push(Workload {
        name: "qft_16".into(),
        circuit: ghs_circuit::qft(16, &all(16), true),
        kind: WorkloadKind::Circuit,
    });
    w.push(Workload {
        name: "trotter_step_14".into(),
        circuit: direct_product_formula(
            &chain_hamiltonian(14),
            0.2,
            1,
            ProductFormula::First,
            &DirectOptions::linear(),
        ),
        kind: WorkloadKind::Circuit,
    });
    w.push(Workload {
        name: "qaoa_layer_16".into(),
        circuit: qaoa_circuit(16, 2),
        kind: WorkloadKind::Circuit,
    });
    for n in [12usize, 16, 20] {
        w.push(Workload {
            name: format!("ladder_{n}"),
            circuit: ladder_circuit(n, if n >= 20 { 6 } else { 12 }),
            kind: WorkloadKind::Circuit,
        });
    }
    // Scale workloads: flat fused engine vs the sharded engine. The 24-qubit
    // ladder is the CI scale gate (≥2x sharded-vs-flat); the 22-qubit deep
    // Trotter circuit sits exactly at the crossover width.
    w.push(Workload {
        name: "ladder_24".into(),
        circuit: ladder_circuit(24, 6),
        kind: WorkloadKind::Sharded,
    });
    w.push(Workload {
        name: "deep_22".into(),
        circuit: direct_product_formula(
            &chain_hamiltonian(22),
            0.4,
            2,
            ProductFormula::First,
            &DirectOptions::linear(),
        ),
        kind: WorkloadKind::Sharded,
    });
    w.push(Workload {
        name: "deep_16".into(),
        circuit: direct_product_formula(
            &chain_hamiltonian(16),
            0.4,
            4,
            ProductFormula::First,
            &DirectOptions::linear(),
        ),
        kind: WorkloadKind::Circuit,
    });
    w.push(Workload {
        name: "random_16".into(),
        circuit: testkit::random_circuit(16, 400, 7),
        kind: WorkloadKind::Circuit,
    });
    w.push(Workload {
        name: "qaoa_12_shots4096".into(),
        circuit: qaoa_circuit(12, 2),
        kind: WorkloadKind::Sampling { shots: 4096 },
    });
    w.push(Workload {
        name: "noisy_trajectories_10".into(),
        circuit: direct_product_formula(
            &chain_hamiltonian(10),
            0.3,
            2,
            ProductFormula::First,
            &DirectOptions::linear(),
        ),
        kind: WorkloadKind::NoisyTrajectories {
            trajectories: 10,
            shots: 256,
            depolarizing: 0.01,
        },
    });
    // Expectation workloads: the states are an evolved UCCSD ansatz and the
    // 12-qubit QAOA state; the observables are the models' full Hamiltonians
    // in Pauli form.
    let h2 = h2_sto3g();
    let pool = uccsd_pool(&h2);
    let thetas = vec![0.11; pool.len()];
    w.push(Workload {
        name: "uccsd_energy_h2".into(),
        circuit: uccsd_circuit(&h2, &pool, &thetas, &DirectOptions::linear()),
        kind: WorkloadKind::Expectation {
            evals: 256,
            observable: h2.pauli_sum(),
        },
    });
    w.push(Workload {
        name: "qaoa_energy_12".into(),
        circuit: qaoa_circuit(12, 2),
        kind: WorkloadKind::Expectation {
            evals: 8,
            observable: qaoa_problem(12).to_pauli_sum(),
        },
    });
    // Gradient workloads: adjoint engine vs the parameter-shift oracle at
    // P ≥ 20 parameters (the CI gate requires ≥5x on both).
    let (vqe_pc, vqe_params, vqe_obs) = layered_uccsd_ansatz(8);
    w.push(Workload {
        name: "vqe_h2_gradient".into(),
        circuit: vqe_pc.bind(&vqe_params),
        kind: WorkloadKind::Gradient {
            parameterized: vqe_pc,
            params: vqe_params,
            observable: vqe_obs,
            evals: 8,
        },
    });
    let qaoa_grad_problem = qaoa_problem(12);
    let qaoa_layers = 10;
    let qaoa_pc = qaoa_parameterized(&qaoa_grad_problem, qaoa_layers, SeparatorStrategy::Direct);
    let qaoa_params = QaoaParameters {
        gammas: (0..qaoa_layers).map(|l| 0.4 + 0.03 * l as f64).collect(),
        betas: (0..qaoa_layers).map(|l| 0.7 - 0.05 * l as f64).collect(),
    }
    .to_vec();
    w.push(Workload {
        name: "qaoa_12_gradient".into(),
        circuit: qaoa_pc.bind(&qaoa_params),
        kind: WorkloadKind::Gradient {
            parameterized: qaoa_pc,
            params: qaoa_params,
            observable: qaoa_grad_problem.to_pauli_sum(),
            evals: 1,
        },
    });
    // Clifford-scale workloads: the stabilizer tableau engine at register
    // widths no dense engine can touch. The CI gate is an absolute
    // shots-per-second floor (`--min-gates-per-sec`), not a speedup ratio:
    // the re-simulation oracle is itself tableau-based, so the prepared
    // path's margin over it is structural, not the headline.
    w.push(Workload {
        name: "ghz_1024".into(),
        circuit: ghz_circuit(1024),
        kind: WorkloadKind::Stabilizer { shots: 64 },
    });
    w.push(Workload {
        name: "syndrome_256".into(),
        circuit: syndrome_circuit(256, 4),
        kind: WorkloadKind::Stabilizer { shots: 256 },
    });
    // Noise workloads: trajectory ensembles vs the exact density-matrix
    // oracle on the noisy-VQE H₂ ansatz and an 8-qubit QAOA layer. The
    // ensemble sizes are what the statistical Hoeffding bounds of the
    // noise-accuracy suite actually require, so the speedup is the one a
    // converged noisy expectation really pays.
    w.push(Workload {
        name: "noisy_vqe_h2".into(),
        circuit: uccsd_circuit(&h2, &pool, &thetas, &DirectOptions::linear()),
        kind: WorkloadKind::Noise {
            model: NoiseModel::depolarizing(0.01),
            trajectories: 256,
            observable: h2.pauli_sum(),
        },
    });
    w.push(Workload {
        name: "density_8".into(),
        circuit: qaoa_circuit(8, 2),
        kind: WorkloadKind::Noise {
            model: NoiseModel::pauli(0.01, 0.005),
            trajectories: 256,
            observable: qaoa_problem(8).to_pauli_sum(),
        },
    });
    // Service-level throughput: the stats circuit is the stream's repeated
    // 12-qubit sampling circuit (its fusion numbers are representative; the
    // timed comparison is the whole mixed batch).
    w.push(Workload {
        name: "service_mixed_throughput".into(),
        circuit: qaoa_circuit(12, 2),
        kind: WorkloadKind::Service {
            jobs: service_job_stream(),
        },
    });
    w
}

fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Runs one workload `reps` times per path and returns best-of-reps metrics.
///
/// For the sampling/noisy kinds the `unfused`/`fused` columns hold the
/// per-shot oracle and batched wall times, and `gates_per_sec` reports
/// **shots** per second through the batched path.
pub fn run_workload(w: &Workload, reps: usize) -> WorkloadResult {
    let n = w.circuit.num_qubits();
    let t0 = Instant::now();
    let fused = w.circuit.fused();
    let fuse_ms = t0.elapsed().as_secs_f64() * 1e3;

    let (unfused_ms, fused_ms, throughput_units) = match &w.kind {
        WorkloadKind::Circuit => {
            let unfused_ms = time_best(reps, || {
                let mut s = StateVector::zero_state(n);
                s.run_unfused(&w.circuit);
                std::hint::black_box(s.probability(0));
            });
            let fused_ms = time_best(reps, || {
                let mut s = StateVector::zero_state(n);
                s.apply_fused(&fused);
                std::hint::black_box(s.probability(0));
            });
            (unfused_ms, fused_ms, w.circuit.len())
        }
        WorkloadKind::Sharded => {
            // Same column semantics as `Circuit`: per-gate flat engine vs
            // the optimized engine — here the sharded one, running the
            // relabeled fused circuit. The two paths produce bit-identical
            // states (spot-checked through one probability), so the columns
            // time pure execution strategy. Reps capped at 2: these states
            // are hundreds of MB and a per-gate sweep runs for seconds.
            let reps = reps.min(2);
            let unfused_ms = time_best(reps, || {
                let mut s = StateVector::zero_state(n);
                s.run_unfused(&w.circuit);
                std::hint::black_box(s.probability(0));
            });
            let relabeling = QubitRelabeling::for_sharding(&fused);
            let fused_ms = time_best(reps, || {
                let mut s = ShardedStateVector::zero_state(n);
                s.run_fused_with(&fused, &relabeling);
                std::hint::black_box(s.probability(0));
            });
            (unfused_ms, fused_ms, w.circuit.len())
        }
        WorkloadKind::Sampling { shots } => {
            let shots = *shots;
            // Pre-measurement state computed once, outside both timers: the
            // comparison isolates the readout cost.
            let mut pre = StateVector::zero_state(n);
            pre.apply_fused(&fused);
            let unfused_ms = time_best(reps, || {
                // Oracle: the cumulative table is rebuilt for every shot.
                let mut rng = StdRng::seed_from_u64(1);
                let mut acc = 0usize;
                for _ in 0..shots {
                    acc ^= pre.sample(1, &mut rng)[0];
                }
                std::hint::black_box(acc);
            });
            let fused_ms = time_best(reps, || {
                std::hint::black_box(pre.sample_cached(shots, 1).len());
            });
            (unfused_ms, fused_ms, shots)
        }
        WorkloadKind::NoisyTrajectories {
            trajectories,
            shots,
            depolarizing,
        } => {
            let (trajectories, shots, depolarizing) = (*trajectories, *shots, *depolarizing);
            let zero = InitialState::ZeroState;
            let unfused_ms = time_best(reps, || {
                // Oracle: every shot re-executes the circuit as a fresh
                // noise trajectory and draws one outcome from it.
                let mut acc = 0usize;
                for shot in 0..shots {
                    let one = PauliNoise::depolarizing(depolarizing, 1, shot as u64);
                    let state = one
                        .run(&zero, &w.circuit)
                        .expect("noise circuits are dense");
                    let mut rng = StdRng::seed_from_u64(shot as u64);
                    acc ^= state.sample(1, &mut rng)[0];
                }
                std::hint::black_box(acc);
            });
            let batched = PauliNoise::depolarizing(depolarizing, trajectories, 0);
            let fused_ms = time_best(reps, || {
                let shots = batched
                    .sample(&zero, &w.circuit, shots, 1)
                    .expect("noise circuits are dense");
                std::hint::black_box(shots.len());
            });
            (unfused_ms, fused_ms, shots)
        }
        WorkloadKind::Expectation {
            evals,
            observable: sum,
        } => {
            let evals = *evals;
            // State evolved once, outside both timers: the comparison
            // isolates the per-evaluation observable cost.
            let mut pre = StateVector::zero_state(n);
            pre.apply_fused(&fused);
            let unfused_ms = time_best(reps, || {
                // Oracle: the pre-engine per-evaluation path. Every energy
                // call site used to materialize the observable as a sparse
                // matrix and run the generic mat-vec + inner product.
                let mut acc = 0.0;
                for _ in 0..evals {
                    let sparse = sum.sparse_matrix();
                    acc += pre.expectation_sparse(&sparse).re;
                }
                std::hint::black_box(acc);
            });
            // The grouped evaluator is prepared once per observable — the
            // new API's contract — and swept per evaluation.
            let grouped = GroupedPauliSum::new(sum);
            let fused_ms = time_best(reps, || {
                let mut acc = 0.0;
                for _ in 0..evals {
                    acc += grouped.expectation(pre.amplitudes()).re;
                }
                std::hint::black_box(acc);
            });
            (unfused_ms, fused_ms, evals)
        }
        WorkloadKind::Gradient {
            parameterized,
            params,
            observable,
            evals,
        } => {
            let evals = *evals;
            // Observable prepared once — both gradient paths share it.
            let grouped = GroupedPauliSum::new(observable);
            let zero = InitialState::ZeroState;
            let backend = FusedStatevector;
            // The shift oracle runs for *seconds* at 20+ parameters (that is
            // the point); best-of-3 is plenty stable at that scale and keeps
            // the CI perf job's wall time bounded.
            let unfused_ms = time_best(reps.min(3), || {
                // Oracle: the pre-adjoint status quo — the parameter-shift
                // rule, two to four full circuit executions per bound gate.
                let mut acc = 0.0;
                for _ in 0..evals {
                    let (e, g) =
                        parameter_shift_gradient(&backend, &zero, parameterized, params, &grouped)
                            .expect("gradient circuits are dense");
                    acc += e + g.iter().sum::<f64>();
                }
                std::hint::black_box(acc);
            });
            let fused_ms = time_best(reps, || {
                // Adjoint engine (the backend's expectation_gradient
                // override): one forward + one reverse sweep per gradient.
                let mut acc = 0.0;
                for _ in 0..evals {
                    let (e, g) = backend
                        .expectation_gradient(&zero, parameterized, params, &grouped)
                        .expect("gradient circuits are dense");
                    acc += e + g.iter().sum::<f64>();
                }
                std::hint::black_box(acc);
            });
            // Throughput: gradient components per second.
            (unfused_ms, fused_ms, evals * params.len())
        }
        WorkloadKind::Stabilizer { shots } => {
            let shots = *shots;
            let backend = StabilizerBackend;
            let zero = InitialState::ZeroState;
            let unfused_ms = time_best(reps.min(3), || {
                // Oracle: every shot rebuilds the tableau from scratch by
                // re-applying the whole circuit, then collapses it.
                let mut acc = 0u64;
                for shot in 0..shots {
                    let mut tableau = backend
                        .prepare(&zero, &w.circuit)
                        .expect("stabilizer workloads are Clifford");
                    let mut rng = StdRng::seed_from_u64(shot as u64);
                    acc ^= tableau.measure_all(&mut rng).words()[0];
                }
                std::hint::black_box(acc);
            });
            // Prepared path: one tableau build outside the timer, then one
            // seeded collapse clone per shot — the backend's sampling path.
            let prepared = backend
                .prepare(&zero, &w.circuit)
                .expect("stabilizer workloads are Clifford");
            let fused_ms = time_best(reps, || {
                let bits = StabilizerBackend::sample_prepared(&prepared, shots, 1);
                std::hint::black_box(bits.len());
            });
            (unfused_ms, fused_ms, shots)
        }
        WorkloadKind::Noise {
            model,
            trajectories,
            observable,
        } => {
            let grouped = GroupedPauliSum::new(observable);
            let zero = InitialState::ZeroState;
            // Oracle: the Monte-Carlo ensemble — `trajectories` independent
            // seeded Kraus evolutions, averaged.
            let ensemble = TrajectoryNoise::new(model.clone(), *trajectories, 1);
            // The ensemble column runs for seconds; best-of-2 keeps the CI
            // perf job's wall time bounded (same treatment as `Sharded`).
            let unfused_ms = time_best(reps.min(2), || {
                let e = ensemble
                    .expectation(&zero, &w.circuit, &grouped)
                    .expect("noise circuits are dense");
                std::hint::black_box(e);
            });
            // Exact path: one vectorised superoperator evolution of ρ.
            let exact = DensityMatrixBackend::new(model.clone());
            let fused_ms = time_best(reps, || {
                let e = exact
                    .expectation(&zero, &w.circuit, &grouped)
                    .expect("noise workloads fit the density register cap");
                std::hint::black_box(e);
            });
            (unfused_ms, fused_ms, *trajectories)
        }
        WorkloadKind::Service { jobs } => {
            // Cold: plan caching disabled — every job pays planning,
            // observable preparation and distribution construction, i.e. the
            // pre-service per-execution status quo.
            let cold = Service::new(ServiceConfig {
                cache_capacity: 0,
                ..ServiceConfig::default()
            });
            let unfused_ms = time_best(reps, || {
                let results = cold.run_batch(jobs).expect("service stream is valid");
                std::hint::black_box(results.len());
            });
            // Warm: one untimed pass populates the structural plan cache;
            // every timed batch is then served from cached artifacts.
            let warm = Service::new(ServiceConfig::default());
            warm.run_batch(jobs).expect("service stream is valid");
            let fused_ms = time_best(reps, || {
                let results = warm.run_batch(jobs).expect("service stream is valid");
                std::hint::black_box(results.len());
            });
            (unfused_ms, fused_ms, jobs.len())
        }
    };

    // Exchange counts at the 64-shard convention: how many fused ops would
    // cross shard boundaries as gather/scatter exchanges, before and after
    // the relabeling pass. Registers narrower than the shard-index width
    // record zero on both sides.
    let (exchange_ops_before, exchange_ops_after) = if n > EXCHANGE_SHARD_QUBITS {
        let relabeled = fused.relabeled(&QubitRelabeling::for_sharding(&fused));
        (
            exchange_count(&fused, EXCHANGE_SHARD_QUBITS),
            exchange_count(&relabeled, EXCHANGE_SHARD_QUBITS),
        )
    } else {
        (0, 0)
    };

    WorkloadResult {
        name: w.name.clone(),
        qubits: n,
        gates: w.circuit.len(),
        fused_ops: fused.ops().len(),
        fusion_ratio: fused.fusion_ratio(),
        fuse_ms,
        unfused_ms,
        fused_ms,
        speedup: unfused_ms / fused_ms.max(1e-9),
        gates_per_sec: throughput_units as f64 / (fused_ms.max(1e-9) / 1e3),
        exchange_ops_before,
        exchange_ops_after,
    }
}

/// Serialises results as the `BENCH.json` document.
pub fn results_to_json(results: &[WorkloadResult]) -> String {
    let mut s = String::from("{\n  \"schema\": 1,\n  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        // Field names must avoid the `"name"` / `"fused_ms"` substrings the
        // minimal baseline parser keys on — hence `exchange_ops_*`.
        s.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"qubits\": {}, \"gates\": {}, ",
                "\"fused_ops\": {}, \"fusion_ratio\": {:.4}, \"fuse_ms\": {:.4}, ",
                "\"unfused_ms\": {:.4}, \"fused_ms\": {:.4}, \"speedup\": {:.4}, ",
                "\"gates_per_sec\": {:.1}, ",
                "\"exchange_ops_before\": {}, \"exchange_ops_after\": {}}}{}\n"
            ),
            r.name,
            r.qubits,
            r.gates,
            r.fused_ops,
            r.fusion_ratio,
            r.fuse_ms,
            r.unfused_ms,
            r.fused_ms,
            r.speedup,
            r.gates_per_sec,
            r.exchange_ops_before,
            r.exchange_ops_after,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Minimal extraction of `(name, fused_ms)` pairs from a `BENCH.json`
/// document (the harness's own output format; not a general JSON parser).
pub fn parse_baseline(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for chunk in json.split("\"name\"").skip(1) {
        let name = chunk
            .split('"')
            .nth(1)
            .map(|s| s.to_string())
            .unwrap_or_default();
        let fused_ms = chunk
            .split("\"fused_ms\"")
            .nth(1)
            .and_then(|rest| {
                rest.trim_start_matches([':', ' '])
                    .split([',', '}', '\n'])
                    .next()
                    .and_then(|v| v.trim().parse::<f64>().ok())
            })
            .unwrap_or(f64::NAN);
        if !name.is_empty() && fused_ms.is_finite() {
            out.push((name, fused_ms));
        }
    }
    out
}

/// Cap on the jitter slack added to every regression limit. Sub-millisecond
/// workloads (the cached-sampler paths run in tens of microseconds) would
/// otherwise turn scheduler jitter between runner generations into CI
/// failures: 25% of 45 µs is far below cross-machine timing variance. The
/// slack is the smaller of this cap and 100% of the baseline itself, so a
/// microsecond workload gets at most ~2.3× headroom — enough to absorb
/// jitter, still far below the order-of-magnitude regressions the gate
/// exists to catch (the per-shot oracle path is ~1000× slower) — while
/// ms-scale workloads see at most a ~3% loosening of the 25% rule.
const MAX_SLACK_MS: f64 = 0.25;

/// Checks that the committed baseline and the harness's workload registry
/// name exactly the same set: one failure line per name present on only one
/// side. Without this guard a renamed workload silently loses its
/// regression gate (its baseline entry stops matching and
/// [`compare_to_baseline`] skips it), and a deleted baseline entry silently
/// un-gates a live workload. CI runs this on every perf job; refresh
/// `bench/baseline.json` in the same PR that renames or adds a workload.
pub fn baseline_name_drift(results: &[WorkloadResult], baseline: &[(String, f64)]) -> Vec<String> {
    let mut failures = Vec::new();
    for r in results {
        if !baseline.iter().any(|(n, _)| *n == r.name) {
            failures.push(format!(
                "workload `{}` is missing from the baseline (its regression gate is dead) — \
                 refresh bench/baseline.json",
                r.name
            ));
        }
    }
    for (name, _) in baseline {
        if !results.iter().any(|r| r.name == *name) {
            failures.push(format!(
                "baseline entry `{name}` matches no registered workload (renamed or removed?) — \
                 refresh bench/baseline.json"
            ));
        }
    }
    failures
}

/// Compares fresh results against a baseline: any workload whose fused wall
/// time exceeds `baseline × (1 + max_regression) + min(0.25 ms, baseline)`
/// yields one failure line. Workloads missing from either side are ignored.
pub fn compare_to_baseline(
    results: &[WorkloadResult],
    baseline: &[(String, f64)],
    max_regression: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for r in results {
        if let Some((_, base_ms)) = baseline.iter().find(|(n, _)| *n == r.name) {
            let limit = base_ms * (1.0 + max_regression) + MAX_SLACK_MS.min(*base_ms);
            if r.fused_ms > limit {
                failures.push(format!(
                    "{}: fused {:.3} ms > {:.3} ms (baseline {:.3} ms + {:.0}%)",
                    r.name,
                    r.fused_ms,
                    limit,
                    base_ms,
                    max_regression * 100.0
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_through_baseline_parser() {
        let results = vec![
            WorkloadResult {
                name: "a".into(),
                qubits: 4,
                gates: 10,
                fused_ops: 3,
                fusion_ratio: 10.0 / 3.0,
                fuse_ms: 0.1,
                unfused_ms: 2.0,
                fused_ms: 0.5,
                speedup: 4.0,
                gates_per_sec: 2e4,
                exchange_ops_before: 3,
                exchange_ops_after: 1,
            },
            WorkloadResult {
                name: "b".into(),
                qubits: 5,
                gates: 20,
                fused_ops: 20,
                fusion_ratio: 1.0,
                fuse_ms: 0.2,
                unfused_ms: 1.0,
                fused_ms: 1.0,
                speedup: 1.0,
                gates_per_sec: 2e4,
                exchange_ops_before: 0,
                exchange_ops_after: 0,
            },
        ];
        let json = results_to_json(&results);
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "a");
        assert!((parsed[0].1 - 0.5).abs() < 1e-9);
        assert!((parsed[1].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn regression_gate_fires_only_beyond_tolerance() {
        let mut r = WorkloadResult {
            name: "a".into(),
            qubits: 4,
            gates: 10,
            fused_ops: 3,
            fusion_ratio: 3.3,
            fuse_ms: 0.1,
            unfused_ms: 2.0,
            fused_ms: 1.2,
            speedup: 1.7,
            gates_per_sec: 1e4,
            exchange_ops_before: 0,
            exchange_ops_after: 0,
        };
        let baseline = vec![("a".to_string(), 1.0)];
        assert!(compare_to_baseline(&[r.clone()], &baseline, 0.25).is_empty());
        // Within tolerance + jitter slack (1.25 + min(0.25, 1.0)): green.
        r.fused_ms = 1.4;
        assert!(compare_to_baseline(&[r.clone()], &baseline, 0.25).is_empty());
        r.fused_ms = 1.6;
        assert_eq!(compare_to_baseline(&[r.clone()], &baseline, 0.25).len(), 1);
        // Microsecond-scale workload: the slack is capped at 100% of the
        // baseline, so the gate still fires well before an order-of-magnitude
        // regression (limit = 0.04·1.25 + 0.04 = 0.09).
        let micro = vec![("a".to_string(), 0.04)];
        r.fused_ms = 0.08;
        assert!(compare_to_baseline(&[r.clone()], &micro, 0.25).is_empty());
        r.fused_ms = 0.15;
        assert_eq!(compare_to_baseline(&[r], &micro, 0.25).len(), 1);
    }

    #[test]
    fn workloads_are_well_formed_and_fast_on_tiny_reps() {
        // Smoke-run the smallest workload end to end so the harness cannot
        // rot silently.
        let w = standard_workloads()
            .into_iter()
            .find(|w| w.name == "ladder_12")
            .expect("ladder_12 present");
        let r = run_workload(&w, 1);
        assert_eq!(r.qubits, 12);
        assert!(r.gates > 0 && r.fused_ops > 0);
        assert!(r.fusion_ratio >= 1.0);
        assert!(r.fused_ms > 0.0 && r.unfused_ms > 0.0);
    }

    #[test]
    fn batched_sampling_workloads_run_end_to_end() {
        for name in ["qaoa_12_shots4096", "noisy_trajectories_10"] {
            let w = standard_workloads()
                .into_iter()
                .find(|w| w.name == name)
                .expect("sampling workload present");
            assert!(!matches!(w.kind, WorkloadKind::Circuit));
            let r = run_workload(&w, 1);
            assert!(
                r.fused_ms > 0.0 && r.unfused_ms > 0.0,
                "{name} produced empty timings"
            );
        }
    }

    #[test]
    fn stabilizer_workloads_run_end_to_end_and_agree_with_their_oracle() {
        // The oracle (per-shot re-simulation) and the prepared sampler must
        // draw from the same state family: a GHZ circuit yields only
        // all-zeros/all-ones strings on both paths. Checked on a scaled-down
        // instance so the debug-build test stays fast; the release perf job
        // runs the full 1024-qubit shape.
        let backend = StabilizerBackend;
        let zero = InitialState::ZeroState;
        let circuit = ghz_circuit(96);
        let prepared = backend.prepare(&zero, &circuit).expect("GHZ is Clifford");
        for bits in StabilizerBackend::sample_prepared(&prepared, 32, 9) {
            let ones = bits.count_ones();
            assert!(ones == 0 || ones == 96, "non-GHZ outcome: {ones} ones");
        }
        for name in ["ghz_1024", "syndrome_256"] {
            let w = standard_workloads()
                .into_iter()
                .find(|w| w.name == name)
                .expect("stabilizer workload present");
            assert!(matches!(w.kind, WorkloadKind::Stabilizer { .. }));
            assert!(w.circuit.is_clifford(), "{name} must be pure Clifford");
            assert!(w.circuit.num_qubits() >= 256);
        }
        // End-to-end timing smoke on the smaller of the two CI shapes.
        let w = Workload {
            name: "syndrome_small".into(),
            circuit: syndrome_circuit(32, 2),
            kind: WorkloadKind::Stabilizer { shots: 16 },
        };
        let r = run_workload(&w, 1);
        assert!(r.fused_ms > 0.0 && r.unfused_ms > 0.0);
        assert!(r.gates_per_sec > 0.0);
    }

    fn check_gradient_workload_shape(name: &str) -> (ParameterizedCircuit, Vec<f64>, PauliSum) {
        let w = standard_workloads()
            .into_iter()
            .find(|w| w.name == name)
            .expect("gradient workload present");
        let WorkloadKind::Gradient {
            parameterized,
            params,
            observable,
            ..
        } = w.kind
        else {
            panic!("{name} must be a gradient workload");
        };
        assert!(params.len() >= 20, "{name} must have ≥20 parameters");
        // The bound circuit recorded for fusion stats matches the template
        // at the workload's parameter point.
        assert_eq!(w.circuit, parameterized.bind(&params));
        (parameterized, params, observable)
    }

    fn assert_adjoint_matches_shift(
        pc: &ParameterizedCircuit,
        params: &[f64],
        observable: &PauliSum,
        label: &str,
    ) {
        let grouped = GroupedPauliSum::new(observable);
        let zero = InitialState::ZeroState;
        let backend = FusedStatevector;
        let (e_adj, g_adj) = backend
            .expectation_gradient(&zero, pc, params, &grouped)
            .unwrap();
        let (e_shift, g_shift) =
            parameter_shift_gradient(&backend, &zero, pc, params, &grouped).unwrap();
        assert!(
            (e_adj - e_shift).abs() < 1e-9,
            "{label}: {e_adj} vs {e_shift}"
        );
        for (k, (a, s)) in g_adj.iter().zip(&g_shift).enumerate() {
            assert!((a - s).abs() < 1e-8, "{label} component {k}: {a} vs {s}");
        }
    }

    #[test]
    fn gradient_workloads_agree_with_their_oracle() {
        // Both timed paths must compute the same numbers: adjoint vs
        // parameter-shift energy and full gradient. The 4-qubit VQE
        // workload is checked at its full 24 parameters; the 12-qubit QAOA
        // workload's shape is validated at scale but its adjoint-vs-shift
        // agreement is checked on a 2-layer instance (the full 20-parameter
        // shift oracle costs seconds per evaluation in debug builds — the
        // release perf job times it, the property suite covers agreement).
        let (vqe_pc, vqe_params, vqe_obs) = check_gradient_workload_shape("vqe_h2_gradient");
        assert_adjoint_matches_shift(&vqe_pc, &vqe_params, &vqe_obs, "vqe_h2_gradient");

        let (_, qaoa_params, _) = check_gradient_workload_shape("qaoa_12_gradient");
        assert_eq!(qaoa_params.len(), 20);
        let problem = qaoa_problem(12);
        let small = qaoa_parameterized(&problem, 2, SeparatorStrategy::Direct);
        assert_adjoint_matches_shift(
            &small,
            &[0.4, 0.43, 0.7, 0.65],
            &problem.to_pauli_sum(),
            "qaoa_12_gradient (2-layer agreement check)",
        );
    }

    #[test]
    fn name_drift_guard_catches_renames_in_both_directions() {
        let result = |name: &str| WorkloadResult {
            name: name.into(),
            qubits: 4,
            gates: 10,
            fused_ops: 3,
            fusion_ratio: 3.3,
            fuse_ms: 0.1,
            unfused_ms: 2.0,
            fused_ms: 1.0,
            speedup: 2.0,
            gates_per_sec: 1e4,
            exchange_ops_before: 0,
            exchange_ops_after: 0,
        };
        let baseline = vec![("a".to_string(), 1.0), ("b".to_string(), 2.0)];
        // In sync: no drift.
        assert!(baseline_name_drift(&[result("a"), result("b")], &baseline).is_empty());
        // A renamed workload drifts on both sides.
        let drift = baseline_name_drift(&[result("a"), result("b2")], &baseline);
        assert_eq!(drift.len(), 2);
        assert!(drift.iter().any(|f| f.contains("`b2`")));
        assert!(drift.iter().any(|f| f.contains("`b`")));
        // The live registry and the committed baseline are in sync right
        // now (this is the in-repo guard the CI step re-runs).
        let registry: Vec<WorkloadResult> = standard_workloads()
            .iter()
            .map(|w| result(&w.name))
            .collect();
        let committed = parse_baseline(include_str!("../../../bench/baseline.json"));
        assert_eq!(
            baseline_name_drift(&registry, &committed),
            Vec::<String>::new()
        );
    }

    #[test]
    fn service_workload_is_deterministic_and_matches_direct_execution() {
        // The two timed paths (cold service, warm service) must return
        // bit-identical results — to each other, across worker counts, and
        // against direct single-execution computation of a spot-checked job.
        let jobs = service_job_stream();
        assert_eq!(jobs.len(), 42);
        let cold = Service::new(ServiceConfig {
            cache_capacity: 0,
            workers: 1,
            ..ServiceConfig::default()
        });
        let warm = Service::new(ServiceConfig::default());
        let a = cold.run_batch(&jobs).expect("valid stream");
        let b = warm.run_batch(&jobs).expect("valid stream");
        let c = warm.run_batch(&jobs).expect("valid stream");
        let outputs =
            |r: &[ghs_service::JobResult]| r.iter().map(|x| x.output.clone()).collect::<Vec<_>>();
        assert_eq!(outputs(&a), outputs(&b), "cold(serial) vs warm(parallel)");
        assert_eq!(outputs(&b), outputs(&c), "warm pass 1 vs warm pass 2");
        // Spot-check the first sampling job against the backend layer.
        let direct = FusedStatevector
            .sample(&InitialState::ZeroState, &qaoa_circuit(12, 2), 1024, 0)
            .unwrap();
        assert_eq!(a[0].output, ghs_service::JobOutput::Shots(direct));
        // The warm service actually cached: the second warm pass added no
        // plan misses.
        let stats = warm.cache_stats();
        assert!(stats.plan_hits > 0 && stats.distribution_hits > 0);
    }

    #[test]
    fn expectation_workloads_agree_with_their_oracle() {
        // The perf harness must time two paths that compute the same
        // number: matrix-free grouped vs sparse-materialized expectation on
        // the workload's evolved state.
        for name in ["uccsd_energy_h2", "qaoa_energy_12"] {
            let w = standard_workloads()
                .into_iter()
                .find(|w| w.name == name)
                .expect("expectation workload present");
            let WorkloadKind::Expectation {
                observable: ref sum,
                ..
            } = w.kind
            else {
                panic!("{name} must be an expectation workload");
            };
            let mut pre = StateVector::zero_state(w.circuit.num_qubits());
            pre.run_fused(&w.circuit);
            let oracle = pre.expectation_sparse(&sum.sparse_matrix());
            let fast = GroupedPauliSum::new(sum).expectation(pre.amplitudes());
            assert!((fast - oracle).abs() < 1e-10, "{name}: {fast} vs {oracle}");
            let r = run_workload(&w, 1);
            assert!(r.fused_ms > 0.0 && r.unfused_ms > 0.0);
        }
    }
}
