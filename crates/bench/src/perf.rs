//! Microbenchmark harness for the fused gate-application engine.
//!
//! Runs a fixed set of representative workloads (QFT, Trotter step, QAOA
//! layer, CX ladders, and a deep 16-qubit Trotter circuit) through both the
//! per-gate oracle path ([`StateVector::run_unfused`]) and the fused engine,
//! and reports wall time, gates/second and the fusion ratio as
//! machine-readable JSON (`BENCH.json`). The committed `bench/baseline.json`
//! is refreshed from this output; CI fails when a workload regresses against
//! it (see [`compare_to_baseline`]).

use ghs_circuit::Circuit;
use ghs_core::{direct_product_formula, DirectOptions, ProductFormula};
use ghs_hubo::{direct_phase_separator, random_sparse_hubo};
use ghs_operators::{ScbHamiltonian, ScbOp, ScbString};
use ghs_statevector::StateVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One named benchmark circuit.
pub struct Workload {
    /// Stable identifier used in `BENCH.json` and the baseline.
    pub name: String,
    /// The circuit to simulate.
    pub circuit: Circuit,
}

/// Timing and fusion metrics of one workload.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadResult {
    /// Workload identifier.
    pub name: String,
    /// Register size.
    pub qubits: usize,
    /// Gate count of the source circuit.
    pub gates: usize,
    /// Fused operation count.
    pub fused_ops: usize,
    /// `gates / fused_ops`.
    pub fusion_ratio: f64,
    /// One-off cost of the fusion pass (milliseconds).
    pub fuse_ms: f64,
    /// Best-of-reps wall time of the per-gate path (milliseconds).
    pub unfused_ms: f64,
    /// Best-of-reps wall time of the fused path (milliseconds).
    pub fused_ms: f64,
    /// `unfused_ms / fused_ms`.
    pub speedup: f64,
    /// Source gates per second through the fused path.
    pub gates_per_sec: f64,
}

/// The hopping-chain + on-site Hamiltonian used by the Trotter workloads
/// (and by the criterion benches): a representative mix of transition
/// (σ†/σ) and boolean (n) terms.
pub fn chain_hamiltonian(n: usize) -> ScbHamiltonian {
    let mut h = ScbHamiltonian::new(n);
    for q in 0..n - 1 {
        h.push_paired(
            ghs_math::c64(0.5, 0.0),
            ScbString::from_pairs(n, &[(q, ScbOp::SigmaDag), (q + 1, ScbOp::Sigma)]),
        );
    }
    for q in 0..n {
        h.push_bare(0.3, ScbString::with_op_on(n, ScbOp::N, &[q]));
    }
    h
}

/// A deep ladder workload: alternating forward/backward CX chains with RZ
/// layers between them, `layers` times.
fn ladder_circuit(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for layer in 0..layers {
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c.rz(n - 1, 0.1 + 0.01 * layer as f64);
        for q in (0..n - 1).rev() {
            c.cx(q, q + 1);
        }
    }
    c
}

/// One QAOA sweep: direct keyed-phase separator for a random sparse HUBO
/// followed by the RX mixer layer, repeated `p` times.
fn qaoa_circuit(n: usize, p: usize) -> Circuit {
    let mut rng = StdRng::seed_from_u64(42);
    let problem = random_sparse_hubo(n, 3, 2 * n, &mut rng);
    let mut c = Circuit::new(n);
    for layer in 0..p {
        let gamma = 0.4 + 0.1 * layer as f64;
        let beta = 0.7 - 0.1 * layer as f64;
        c.append(&direct_phase_separator(&problem, gamma));
        for q in 0..n {
            c.rx(q, 2.0 * beta);
        }
    }
    c
}

/// A deep random circuit: interleaved single-qubit rotations, CX pairs and
/// controlled phases, the unstructured stress case for the fusion pass.
fn random_dense_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        let q = rng.gen_range(0..n);
        match rng.gen_range(0..6u32) {
            0 => {
                c.h(q);
            }
            1 => {
                c.rz(q, rng.gen_range(-1.0..1.0));
            }
            2 => {
                c.ry(q, rng.gen_range(-1.0..1.0));
            }
            3 => {
                let t = (q + 1 + rng.gen_range(0..n - 1)) % n;
                c.cx(q, t);
            }
            4 => {
                let t = (q + 1 + rng.gen_range(0..n - 1)) % n;
                c.cp(q, t, rng.gen_range(-1.0..1.0));
            }
            _ => {
                c.x(q);
            }
        }
    }
    c
}

/// The standard workload set recorded in `BENCH.json`.
///
/// * `qft_16` — full QFT with final swaps.
/// * `trotter_step_14` — one first-order Trotter step of the hopping chain.
/// * `qaoa_layer_16` — two QAOA sweeps of a sparse order-3 HUBO.
/// * `ladder_12/16/20` — deep CX-ladder/RZ circuits at growing width.
/// * `deep_16` — four Trotter steps at 16 qubits, the deep-circuit
///   reference the CI regression gate watches most closely.
/// * `random_16` — unstructured random circuit (fusion worst case).
pub fn standard_workloads() -> Vec<Workload> {
    let all = |n: usize| (0..n).collect::<Vec<_>>();
    let mut w = Vec::new();
    w.push(Workload {
        name: "qft_16".into(),
        circuit: ghs_circuit::qft(16, &all(16), true),
    });
    w.push(Workload {
        name: "trotter_step_14".into(),
        circuit: direct_product_formula(
            &chain_hamiltonian(14),
            0.2,
            1,
            ProductFormula::First,
            &DirectOptions::linear(),
        ),
    });
    w.push(Workload {
        name: "qaoa_layer_16".into(),
        circuit: qaoa_circuit(16, 2),
    });
    for n in [12usize, 16, 20] {
        w.push(Workload {
            name: format!("ladder_{n}"),
            circuit: ladder_circuit(n, if n >= 20 { 6 } else { 12 }),
        });
    }
    w.push(Workload {
        name: "deep_16".into(),
        circuit: direct_product_formula(
            &chain_hamiltonian(16),
            0.4,
            4,
            ProductFormula::First,
            &DirectOptions::linear(),
        ),
    });
    w.push(Workload {
        name: "random_16".into(),
        circuit: random_dense_circuit(16, 400, 7),
    });
    w
}

fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Runs one workload `reps` times per path and returns best-of-reps metrics.
pub fn run_workload(w: &Workload, reps: usize) -> WorkloadResult {
    let n = w.circuit.num_qubits();
    let t0 = Instant::now();
    let fused = w.circuit.fused();
    let fuse_ms = t0.elapsed().as_secs_f64() * 1e3;

    let unfused_ms = time_best(reps, || {
        let mut s = StateVector::zero_state(n);
        s.run_unfused(&w.circuit);
        std::hint::black_box(s.probability(0));
    });
    let fused_ms = time_best(reps, || {
        let mut s = StateVector::zero_state(n);
        s.apply_fused(&fused);
        std::hint::black_box(s.probability(0));
    });

    WorkloadResult {
        name: w.name.clone(),
        qubits: n,
        gates: w.circuit.len(),
        fused_ops: fused.ops().len(),
        fusion_ratio: fused.fusion_ratio(),
        fuse_ms,
        unfused_ms,
        fused_ms,
        speedup: unfused_ms / fused_ms.max(1e-9),
        gates_per_sec: w.circuit.len() as f64 / (fused_ms.max(1e-9) / 1e3),
    }
}

/// Serialises results as the `BENCH.json` document.
pub fn results_to_json(results: &[WorkloadResult]) -> String {
    let mut s = String::from("{\n  \"schema\": 1,\n  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"qubits\": {}, \"gates\": {}, ",
                "\"fused_ops\": {}, \"fusion_ratio\": {:.4}, \"fuse_ms\": {:.4}, ",
                "\"unfused_ms\": {:.4}, \"fused_ms\": {:.4}, \"speedup\": {:.4}, ",
                "\"gates_per_sec\": {:.1}}}{}\n"
            ),
            r.name,
            r.qubits,
            r.gates,
            r.fused_ops,
            r.fusion_ratio,
            r.fuse_ms,
            r.unfused_ms,
            r.fused_ms,
            r.speedup,
            r.gates_per_sec,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Minimal extraction of `(name, fused_ms)` pairs from a `BENCH.json`
/// document (the harness's own output format; not a general JSON parser).
pub fn parse_baseline(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for chunk in json.split("\"name\"").skip(1) {
        let name = chunk
            .split('"')
            .nth(1)
            .map(|s| s.to_string())
            .unwrap_or_default();
        let fused_ms = chunk
            .split("\"fused_ms\"")
            .nth(1)
            .and_then(|rest| {
                rest.trim_start_matches([':', ' '])
                    .split([',', '}', '\n'])
                    .next()
                    .and_then(|v| v.trim().parse::<f64>().ok())
            })
            .unwrap_or(f64::NAN);
        if !name.is_empty() && fused_ms.is_finite() {
            out.push((name, fused_ms));
        }
    }
    out
}

/// Compares fresh results against a baseline: any workload whose fused wall
/// time exceeds `baseline × (1 + max_regression)` yields one failure line.
/// Workloads missing from either side are ignored.
pub fn compare_to_baseline(
    results: &[WorkloadResult],
    baseline: &[(String, f64)],
    max_regression: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for r in results {
        if let Some((_, base_ms)) = baseline.iter().find(|(n, _)| *n == r.name) {
            let limit = base_ms * (1.0 + max_regression);
            if r.fused_ms > limit {
                failures.push(format!(
                    "{}: fused {:.3} ms > {:.3} ms (baseline {:.3} ms + {:.0}%)",
                    r.name,
                    r.fused_ms,
                    limit,
                    base_ms,
                    max_regression * 100.0
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_through_baseline_parser() {
        let results = vec![
            WorkloadResult {
                name: "a".into(),
                qubits: 4,
                gates: 10,
                fused_ops: 3,
                fusion_ratio: 10.0 / 3.0,
                fuse_ms: 0.1,
                unfused_ms: 2.0,
                fused_ms: 0.5,
                speedup: 4.0,
                gates_per_sec: 2e4,
            },
            WorkloadResult {
                name: "b".into(),
                qubits: 5,
                gates: 20,
                fused_ops: 20,
                fusion_ratio: 1.0,
                fuse_ms: 0.2,
                unfused_ms: 1.0,
                fused_ms: 1.0,
                speedup: 1.0,
                gates_per_sec: 2e4,
            },
        ];
        let json = results_to_json(&results);
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "a");
        assert!((parsed[0].1 - 0.5).abs() < 1e-9);
        assert!((parsed[1].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn regression_gate_fires_only_beyond_tolerance() {
        let mut r = WorkloadResult {
            name: "a".into(),
            qubits: 4,
            gates: 10,
            fused_ops: 3,
            fusion_ratio: 3.3,
            fuse_ms: 0.1,
            unfused_ms: 2.0,
            fused_ms: 1.2,
            speedup: 1.7,
            gates_per_sec: 1e4,
        };
        let baseline = vec![("a".to_string(), 1.0)];
        assert!(compare_to_baseline(&[r.clone()], &baseline, 0.25).is_empty());
        r.fused_ms = 1.3;
        assert_eq!(compare_to_baseline(&[r], &baseline, 0.25).len(), 1);
    }

    #[test]
    fn workloads_are_well_formed_and_fast_on_tiny_reps() {
        // Smoke-run the smallest workload end to end so the harness cannot
        // rot silently.
        let w = standard_workloads()
            .into_iter()
            .find(|w| w.name == "ladder_12")
            .expect("ladder_12 present");
        let r = run_workload(&w, 1);
        assert_eq!(r.qubits, 12);
        assert!(r.gates > 0 && r.fused_ops > 0);
        assert!(r.fusion_ratio >= 1.0);
        assert!(r.fused_ms > 0.0 && r.unfused_ms > 0.0);
    }
}
