//! # ghs-bench
//!
//! Benchmark harness and experiment-reproduction support for the
//! gate-efficient Hamiltonian-simulation workspace. The `experiments` binary
//! regenerates every table and analytic figure of the paper's evaluation
//! (see EXPERIMENTS.md at the workspace root for the index); the Criterion
//! benches time the heavy code paths behind them.

#![warn(missing_docs)]

pub mod perf;

/// Prints a fixed-width text table: a header row followed by data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
        .collect();
    println!("{}", header_line.join(" | "));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("-+-")
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join(" | "));
    }
}

/// Formats a float compactly for table cells.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e-3 && x.abs() < 1e6 {
        format!("{x:.4}")
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1.5), "1.5000");
        assert_eq!(fmt_f(1.23e-7), "1.23e-7");
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["300".into(), "4".into()]],
        );
    }
}
