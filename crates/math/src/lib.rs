//! # ghs-math
//!
//! Linear-algebra substrate for the gate-efficient Hamiltonian-simulation
//! workspace: complex scalars, dense and sparse complex matrices, Kronecker
//! products, matrix exponentials and exponential actions, plus bit-string
//! utilities shared by the operator and circuit layers.
//!
//! Everything here is deliberately dependency-light (only `rayon` for the
//! data-parallel kernels) so the higher layers can rely on a small, auditable
//! numerical core.

#![warn(missing_docs)]

pub mod bits;
pub mod complex;
pub mod dense;
pub mod eigen;
pub mod expm;
pub mod simd;
pub mod sparse;

pub use complex::{c64, Complex64};
pub use dense::CMatrix;
pub use eigen::{dominant_eigenvalue, min_hermitian_eigenvalue, rayleigh_quotient};
pub use expm::{
    expm, expm_minus_i_theta, expm_multiply, expm_multiply_minus_i_theta, expm_plus_i_theta,
    vec_distance, vec_inner, vec_norm,
};
pub use simd::{C64x4, F64x4};
pub use sparse::{CooMatrix, SparseMatrix};

/// Default numerical tolerance used by the verification tests of the
/// workspace (well above accumulated round-off for ≤ 2¹⁵-dimensional
/// problems, well below any structural error).
pub const DEFAULT_TOL: f64 = 1e-9;
