//! Dense complex matrices.
//!
//! These are used for exact verification of quantum circuits against their
//! defining linear-algebra objects (Hamiltonians, unitaries, block-encodings).
//! The matrices involved are at most `2^n × 2^n` for small `n`, so a simple
//! row-major `Vec<Complex64>` layout with straightforward `O(n³)`
//! multiplication is appropriate; rayon parallelises the row loop for the
//! larger verification cases.

use crate::complex::{c64, Complex64};
use rayon::prelude::*;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Row-major dense complex matrix.
#[derive(Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested row slices of real numbers (test helper).
    pub fn from_real_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend(row.iter().map(|&x| c64(x, 0.0)));
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from nested row slices of complex numbers.
    pub fn from_rows(rows: &[&[Complex64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[Complex64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True for square matrices.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major storage.
    #[inline]
    pub fn data(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Returns the `r`-th row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[Complex64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor with bounds checking through the slice index.
    #[inline(always)]
    pub fn get(&self, r: usize, c: usize) -> Complex64 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline(always)]
    pub fn set(&mut self, r: usize, c: usize, v: Complex64) {
        self.data[r * self.cols + c] = v;
    }

    /// Conjugate transpose `A†`.
    pub fn dagger(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)].conj();
            }
        }
        out
    }

    /// Plain transpose (no conjugation).
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> Self {
        let data = self.data.iter().map(|z| z.conj()).collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, s: Complex64) -> Self {
        let data = self.data.iter().map(|&z| z * s).collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place scaled accumulation `self += s·other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Self, s: Complex64) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * s;
        }
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    /// Panics when the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let (n, k, m) = (self.rows, self.cols, rhs.cols);
        let mut out = Self::zeros(n, m);
        // Parallelise over output rows; the i-k-j loop order keeps the rhs row
        // access contiguous which matters for the larger verification matrices.
        out.data
            .par_chunks_mut(m)
            .enumerate()
            .for_each(|(i, out_row)| {
                for p in 0..k {
                    let a = self.data[i * k + p];
                    if a.norm_sqr() == 0.0 {
                        continue;
                    }
                    let rhs_row = &rhs.data[p * m..(p + 1) * m];
                    for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                        *o += a * b;
                    }
                }
            });
        out
    }

    /// Matrix-vector product `self · v`.
    pub fn matvec(&self, v: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let row = self.row(i);
                row.iter().zip(v.iter()).map(|(&a, &b)| a * b).sum()
            })
            .collect()
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Self) -> Self {
        let rows = self.rows * rhs.rows;
        let cols = self.cols * rhs.cols;
        let mut out = Self::zeros(rows, cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a.norm_sqr() == 0.0 {
                    continue;
                }
                for p in 0..rhs.rows {
                    for q in 0..rhs.cols {
                        out[(i * rhs.rows + p, j * rhs.cols + q)] = a * rhs[(p, q)];
                    }
                }
            }
        }
        out
    }

    /// Kronecker product of a sequence of factors, left-to-right
    /// (`factors[0] ⊗ factors[1] ⊗ …`).
    pub fn kron_all(factors: &[&Self]) -> Self {
        assert!(!factors.is_empty(), "kron_all needs at least one factor");
        let mut acc = factors[0].clone();
        for f in &factors[1..] {
            acc = acc.kron(f);
        }
        acc
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square());
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry magnitude (max norm).
    pub fn max_norm(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// 1-norm (maximum absolute column sum); used to scale matrix exponentials.
    pub fn one_norm(&self) -> f64 {
        (0..self.cols)
            .map(|c| (0..self.rows).map(|r| self[(r, c)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Frobenius distance `‖self − other‖_F`.
    pub fn distance(&self, other: &Self) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Entry-wise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Approximate equality up to a global phase `e^{iφ}`.
    ///
    /// Returns the phase when it exists. This matters when comparing circuit
    /// unitaries that legitimately differ from the target by a global phase.
    pub fn approx_eq_up_to_phase(&self, other: &Self, tol: f64) -> Option<Complex64> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        // Find the largest-magnitude entry of `other` to fix the phase.
        let (mut best, mut idx) = (0.0, 0usize);
        for (i, z) in other.data.iter().enumerate() {
            if z.abs() > best {
                best = z.abs();
                idx = i;
            }
        }
        if best <= tol {
            return if self.max_norm() <= tol {
                Some(Complex64::ONE)
            } else {
                None
            };
        }
        let phase = self.data[idx] / other.data[idx];
        if (phase.abs() - 1.0).abs() > 10.0 * tol {
            return None;
        }
        if self.approx_eq(&other.scale(phase), tol) {
            Some(phase)
        } else {
            None
        }
    }

    /// True when `A A† ≈ I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        self.matmul(&self.dagger())
            .approx_eq(&Self::identity(self.rows), tol)
    }

    /// True when `A ≈ A†` within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&self.dagger(), tol)
    }

    /// Extracts the sub-block with row range `r0..r0+h` and column range `c0..c0+w`.
    pub fn block(&self, r0: usize, c0: usize, h: usize, w: usize) -> Self {
        assert!(
            r0 + h <= self.rows && c0 + w <= self.cols,
            "block out of range"
        );
        let mut out = Self::zeros(h, w);
        for i in 0..h {
            for j in 0..w {
                out[(i, j)] = self[(r0 + i, c0 + j)];
            }
        }
        out
    }

    /// Matrix power by repeated squaring (non-negative integer exponents).
    pub fn pow(&self, mut e: u32) -> Self {
        assert!(self.is_square());
        let mut base = self.clone();
        let mut acc = Self::identity(self.rows);
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.matmul(&base);
            }
            base = base.matmul(&base);
            e >>= 1;
        }
        acc
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline(always)]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline(always)]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| *a + *b)
            .collect();
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| *a - *b)
            .collect();
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        self.matmul(rhs)
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(16) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(16) {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    fn pauli_x() -> CMatrix {
        CMatrix::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]])
    }

    fn pauli_y() -> CMatrix {
        CMatrix::from_rows(&[
            &[Complex64::ZERO, c64(0.0, -1.0)],
            &[c64(0.0, 1.0), Complex64::ZERO],
        ])
    }

    fn pauli_z() -> CMatrix {
        CMatrix::from_real_rows(&[&[1.0, 0.0], &[0.0, -1.0]])
    }

    #[test]
    fn identity_multiplication() {
        let x = pauli_x();
        let id = CMatrix::identity(2);
        assert!(x.matmul(&id).approx_eq(&x, TOL));
        assert!(id.matmul(&x).approx_eq(&x, TOL));
    }

    #[test]
    fn pauli_algebra_xy_equals_iz() {
        let xy = pauli_x().matmul(&pauli_y());
        let iz = pauli_z().scale(Complex64::I);
        assert!(xy.approx_eq(&iz, TOL));
    }

    #[test]
    fn paulis_are_unitary_and_hermitian() {
        for p in [pauli_x(), pauli_y(), pauli_z()] {
            assert!(p.is_unitary(TOL));
            assert!(p.is_hermitian(TOL));
        }
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = pauli_x();
        let z = pauli_z();
        let xz = x.kron(&z);
        assert_eq!(xz.rows(), 4);
        assert_eq!(xz.cols(), 4);
        // (X ⊗ Z)[0,2] = X[0,1]·Z[0,0] = 1
        assert!(xz[(0, 2)].approx_eq(Complex64::ONE, TOL));
        assert!(xz[(1, 3)].approx_eq(c64(-1.0, 0.0), TOL));
        assert!(xz.is_unitary(TOL));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = pauli_x();
        let b = pauli_y();
        let c = pauli_z();
        let d = CMatrix::identity(2);
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.approx_eq(&rhs, TOL));
    }

    #[test]
    fn dagger_and_trace() {
        let m = CMatrix::from_rows(&[
            &[c64(1.0, 2.0), c64(3.0, -1.0)],
            &[c64(0.0, 1.0), c64(-2.0, 0.5)],
        ]);
        let d = m.dagger();
        assert!(d[(0, 1)].approx_eq(c64(0.0, -1.0), TOL));
        assert!(d[(1, 0)].approx_eq(c64(3.0, 1.0), TOL));
        assert!(m.trace().approx_eq(c64(-1.0, 2.5), TOL));
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = pauli_y();
        let v = vec![c64(1.0, 0.0), c64(0.5, -0.5)];
        let got = m.matvec(&v);
        let as_mat = CMatrix::from_vec(2, 1, v.clone());
        let expect = m.matmul(&as_mat);
        assert!(got[0].approx_eq(expect[(0, 0)], TOL));
        assert!(got[1].approx_eq(expect[(1, 0)], TOL));
    }

    #[test]
    fn block_extraction() {
        let m = pauli_x().kron(&pauli_z());
        let b = m.block(0, 2, 2, 2);
        assert!(b.approx_eq(&pauli_z(), TOL));
    }

    #[test]
    fn pow_repeated_squaring() {
        let x = pauli_x();
        assert!(x.pow(0).approx_eq(&CMatrix::identity(2), TOL));
        assert!(x.pow(2).approx_eq(&CMatrix::identity(2), TOL));
        assert!(x.pow(5).approx_eq(&x, TOL));
    }

    #[test]
    fn approx_eq_up_to_phase_detects_phase() {
        let x = pauli_x();
        let phased = x.scale(Complex64::cis(0.3));
        let phase = phased.approx_eq_up_to_phase(&x, 1e-10).expect("phase");
        assert!(phase.approx_eq(Complex64::cis(0.3), 1e-10));
        assert!(x.approx_eq_up_to_phase(&pauli_z(), 1e-10).is_none());
    }

    #[test]
    fn norms() {
        let m = CMatrix::from_real_rows(&[&[3.0, 0.0], &[4.0, 0.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < TOL);
        assert!((m.one_norm() - 7.0).abs() < TOL);
        assert!((m.max_norm() - 4.0).abs() < TOL);
    }
}
