//! Minimal Hermitian eigenvalue routines (power iteration), used by the
//! chemistry application to compute reference ground-state energies without
//! pulling in an external linear-algebra dependency.

use crate::complex::Complex64;
use crate::expm::{vec_inner, vec_norm};
use crate::sparse::SparseMatrix;

/// Rayleigh quotient `⟨v|A|v⟩ / ⟨v|v⟩` (real part; `A` is assumed Hermitian).
pub fn rayleigh_quotient(a: &SparseMatrix, v: &[Complex64]) -> f64 {
    let av = a.matvec(v);
    let num = vec_inner(v, &av);
    let den = vec_norm(v).powi(2);
    num.re / den
}

/// Largest-magnitude eigenvalue of a Hermitian matrix by power iteration.
///
/// Returns `(eigenvalue, eigenvector)`. Deterministic start vector; `iters`
/// in the low hundreds suffices for the small spectral problems of the
/// workspace.
pub fn dominant_eigenvalue(a: &SparseMatrix, iters: usize) -> (f64, Vec<Complex64>) {
    assert_eq!(a.rows(), a.cols());
    let n = a.rows();
    // Deterministic, generic starting vector (non-orthogonal to almost any
    // eigenvector).
    let mut v: Vec<Complex64> = (0..n)
        .map(|i| Complex64::new(1.0 + (i as f64 * 0.7311).sin(), (i as f64 * 0.2913).cos()))
        .collect();
    let norm = vec_norm(&v);
    for x in &mut v {
        *x = x.scale(1.0 / norm);
    }
    let mut lambda = 0.0;
    for _ in 0..iters {
        let mut av = a.matvec(&v);
        let norm = vec_norm(&av);
        if norm < 1e-300 {
            return (0.0, v);
        }
        for x in &mut av {
            *x = x.scale(1.0 / norm);
        }
        v = av;
        lambda = rayleigh_quotient(a, &v);
    }
    (lambda, v)
}

/// Smallest eigenvalue of a Hermitian matrix via a spectral shift:
/// power-iterate `σI − A` with `σ` an upper bound on the spectrum
/// (Gershgorin), then un-shift.
pub fn min_hermitian_eigenvalue(a: &SparseMatrix, iters: usize) -> (f64, Vec<Complex64>) {
    assert_eq!(a.rows(), a.cols());
    let n = a.rows();
    // Gershgorin upper bound: max_i (Re a_ii + Σ_{j≠i} |a_ij|).
    let mut sigma = f64::NEG_INFINITY;
    let mut row_diag = vec![0.0f64; n];
    let mut row_off = vec![0.0f64; n];
    for (r, c, v) in a.iter() {
        if r == c {
            row_diag[r] += v.re;
        } else {
            row_off[r] += v.abs();
        }
    }
    for i in 0..n {
        sigma = sigma.max(row_diag[i] + row_off[i]);
    }
    if !sigma.is_finite() {
        sigma = 0.0;
    }
    sigma += 1.0;
    // Shifted matrix σI − A.
    let shifted = SparseMatrix::identity(n)
        .scale(Complex64::real(sigma))
        .add_scaled(a, Complex64::real(-1.0));
    let (lam, vec) = dominant_eigenvalue(&shifted, iters);
    (sigma - lam, vec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::dense::CMatrix;

    #[test]
    fn diagonal_matrix_extremes() {
        let d = CMatrix::from_diagonal(&[c64(-3.0, 0.0), c64(1.0, 0.0), c64(5.0, 0.0)]);
        let s = SparseMatrix::from_dense(&d, 0.0);
        let (max, _) = dominant_eigenvalue(&s, 300);
        assert!((max - 5.0).abs() < 1e-6);
        let (min, _) = min_hermitian_eigenvalue(&s, 300);
        assert!((min + 3.0).abs() < 1e-6);
    }

    #[test]
    fn pauli_x_eigenvalues() {
        let x = CMatrix::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let s = SparseMatrix::from_dense(&x, 0.0);
        let (min, v) = min_hermitian_eigenvalue(&s, 500);
        assert!((min + 1.0).abs() < 1e-6);
        // Eigenvector is (1, −1)/√2 up to phase.
        let ratio = v[1] / v[0];
        assert!((ratio.re + 1.0).abs() < 1e-4 && ratio.im.abs() < 1e-4);
    }

    #[test]
    fn hermitian_random_matrix_bracketing() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        let n = 12;
        let mut m = CMatrix::zeros(n, n);
        for r in 0..n {
            for c in r..n {
                let v = if r == c {
                    c64(rng.gen_range(-1.0..1.0), 0.0)
                } else {
                    c64(rng.gen_range(-0.3..0.3), rng.gen_range(-0.3..0.3))
                };
                m[(r, c)] = v;
                m[(c, r)] = v.conj();
            }
        }
        let s = SparseMatrix::from_dense(&m, 0.0);
        let (min, vmin) = min_hermitian_eigenvalue(&s, 800);
        let (max, _) = dominant_eigenvalue(&s, 800);
        // Rayleigh quotients of arbitrary vectors are bracketed.
        let probe: Vec<Complex64> = (0..n).map(|i| c64(1.0, i as f64 * 0.1)).collect();
        let rq = rayleigh_quotient(&s, &probe);
        assert!(min <= rq + 1e-6);
        assert!(rq <= max.abs() + 1e-6);
        // The returned eigenvector achieves the minimum.
        assert!((rayleigh_quotient(&s, &vmin) - min).abs() < 1e-5);
    }
}
