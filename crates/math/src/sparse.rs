//! Sparse complex matrices (COO construction, CSR execution).
//!
//! The finite-difference application and the large verification cases
//! (e.g. the 15-qubit example term of Fig. 2 of the paper) produce matrices
//! far too large to store densely, but with only a handful of non-zeros per
//! row. `SparseMatrix` supports the operations needed by the workspace:
//! scaled accumulation, Kronecker products, matrix-vector products and the
//! Hermitian checks used by the tests.

use crate::complex::Complex64;
use crate::dense::CMatrix;
use rayon::prelude::*;
use std::collections::HashMap;

/// Coordinate-format builder for sparse matrices.
#[derive(Clone, Debug, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, Complex64)>,
}

impl CooMatrix {
    /// Creates an empty COO matrix with the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`; duplicate coordinates accumulate.
    pub fn push(&mut self, row: usize, col: usize, value: Complex64) {
        assert!(row < self.rows && col < self.cols, "entry out of bounds");
        if value.norm_sqr() != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Number of (possibly duplicated) stored entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Converts to CSR, merging duplicate coordinates.
    pub fn to_csr(&self) -> SparseMatrix {
        let mut merged: HashMap<(usize, usize), Complex64> = HashMap::new();
        for &(r, c, v) in &self.entries {
            *merged.entry((r, c)).or_insert(Complex64::ZERO) += v;
        }
        let mut triplets: Vec<_> = merged
            .into_iter()
            .filter(|(_, v)| v.abs() > 0.0)
            .map(|((r, c), v)| (r, c, v))
            .collect();
        triplets.sort_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        for &(r, c, v) in &triplets {
            row_ptr[r + 1] += 1;
            col_idx.push(c);
            values.push(v);
        }
        for r in 0..self.rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        SparseMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Compressed-sparse-row complex matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<Complex64>,
}

impl SparseMatrix {
    /// The `n × n` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, Complex64::ONE);
        }
        coo.to_csr()
    }

    /// Builds a sparse matrix from a dense one (dropping entries below `tol`).
    pub fn from_dense(m: &CMatrix, tol: f64) -> Self {
        let mut coo = CooMatrix::new(m.rows(), m.cols());
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let v = m.get(r, c);
                if v.abs() > tol {
                    coo.push(r, c, v);
                }
            }
        }
        coo.to_csr()
    }

    /// Builds directly from sorted triplets (testing convenience).
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, Complex64)]) -> Self {
        let mut coo = CooMatrix::new(rows, cols);
        for &(r, c, v) in triplets {
            coo.push(r, c, v);
        }
        coo.to_csr()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Complex64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            (self.row_ptr[r]..self.row_ptr[r + 1])
                .map(move |k| (r, self.col_idx[k], self.values[k]))
        })
    }

    /// Value at `(r, c)` (zero when not stored).
    pub fn get(&self, r: usize, c: usize) -> Complex64 {
        for k in self.row_ptr[r]..self.row_ptr[r + 1] {
            if self.col_idx[k] == c {
                return self.values[k];
            }
        }
        Complex64::ZERO
    }

    /// Converts to a dense matrix (only for small shapes).
    pub fn to_dense(&self) -> CMatrix {
        let mut m = CMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            m[(r, c)] += v;
        }
        m
    }

    /// Matrix-vector product `A·v`, parallelised over rows.
    pub fn matvec(&self, v: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        let mut out = vec![Complex64::ZERO; self.rows];
        out.par_iter_mut().enumerate().for_each(|(r, o)| {
            let mut acc = Complex64::ZERO;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * v[self.col_idx[k]];
            }
            *o = acc;
        });
        out
    }

    /// Scaled sum `self + s·other`.
    pub fn add_scaled(&self, other: &Self, s: Complex64) -> Self {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        let mut coo = CooMatrix::new(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            coo.push(r, c, v);
        }
        for (r, c, v) in other.iter() {
            coo.push(r, c, v * s);
        }
        coo.to_csr()
    }

    /// Scales every entry.
    pub fn scale(&self, s: Complex64) -> Self {
        let mut out = self.clone();
        for v in &mut out.values {
            *v *= s;
        }
        out
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Self {
        let mut coo = CooMatrix::new(self.cols, self.rows);
        for (r, c, v) in self.iter() {
            coo.push(c, r, v.conj());
        }
        coo.to_csr()
    }

    /// Sparse matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut coo = CooMatrix::new(self.rows, rhs.cols);
        for r in 0..self.rows {
            let mut row_acc: HashMap<usize, Complex64> = HashMap::new();
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let a = self.values[k];
                let mid = self.col_idx[k];
                for k2 in rhs.row_ptr[mid]..rhs.row_ptr[mid + 1] {
                    *row_acc.entry(rhs.col_idx[k2]).or_insert(Complex64::ZERO) +=
                        a * rhs.values[k2];
                }
            }
            for (c, v) in row_acc {
                coo.push(r, c, v);
            }
        }
        coo.to_csr()
    }

    /// Kronecker product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Self) -> Self {
        let mut coo = CooMatrix::new(self.rows * rhs.rows, self.cols * rhs.cols);
        for (r1, c1, v1) in self.iter() {
            for (r2, c2, v2) in rhs.iter() {
                coo.push(r1 * rhs.rows + r2, c1 * rhs.cols + c2, v1 * v2);
            }
        }
        coo.to_csr()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt()
    }

    /// 1-norm (max column absolute sum).
    pub fn one_norm(&self) -> f64 {
        let mut col_sum = vec![0.0f64; self.cols];
        for (_, c, v) in self.iter() {
            col_sum[c] += v.abs();
        }
        col_sum.into_iter().fold(0.0, f64::max)
    }

    /// True when `A ≈ A†` within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for (r, c, v) in self.iter() {
            if !self.get(c, r).conj().approx_eq(v, tol) {
                return false;
            }
        }
        true
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        self.add_scaled(other, Complex64::real(-1.0))
            .frobenius_norm()
            <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    const TOL: f64 = 1e-12;

    fn small() -> SparseMatrix {
        SparseMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, c64(2.0, 0.0)),
                (0, 2, c64(0.0, 1.0)),
                (1, 1, c64(-1.0, 0.0)),
                (2, 0, c64(0.0, -1.0)),
                (2, 2, c64(3.0, 0.0)),
            ],
        )
    }

    #[test]
    fn coo_accumulates_duplicates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, c64(1.0, 0.0));
        coo.push(0, 0, c64(2.0, 0.0));
        coo.push(1, 1, c64(-3.0, 0.0));
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert!(csr.get(0, 0).approx_eq(c64(3.0, 0.0), TOL));
    }

    #[test]
    fn dense_round_trip() {
        let s = small();
        let d = s.to_dense();
        let s2 = SparseMatrix::from_dense(&d, 0.0);
        assert!(s.approx_eq(&s2, TOL));
    }

    #[test]
    fn matvec_matches_dense() {
        let s = small();
        let v = vec![c64(1.0, 0.0), c64(0.0, 1.0), c64(-1.0, 0.5)];
        let got = s.matvec(&v);
        let expect = s.to_dense().matvec(&v);
        for (g, e) in got.iter().zip(expect.iter()) {
            assert!(g.approx_eq(*e, TOL));
        }
    }

    #[test]
    fn matmul_matches_dense() {
        let a = small();
        let b = small().dagger();
        let got = a.matmul(&b).to_dense();
        let expect = a.to_dense().matmul(&b.to_dense());
        assert!(got.approx_eq(&expect, TOL));
    }

    #[test]
    fn kron_matches_dense() {
        let a = small();
        let id = SparseMatrix::identity(2);
        let got = a.kron(&id).to_dense();
        let expect = a.to_dense().kron(&CMatrix::identity(2));
        assert!(got.approx_eq(&expect, TOL));
    }

    #[test]
    fn hermitian_check() {
        let s = small();
        assert!(s.is_hermitian(TOL)); // constructed Hermitian
        let ns = SparseMatrix::from_triplets(2, 2, &[(0, 1, c64(1.0, 0.0))]);
        assert!(!ns.is_hermitian(TOL));
    }

    #[test]
    fn add_scaled_and_norms() {
        let s = small();
        let z = s.add_scaled(&s, c64(-1.0, 0.0));
        assert!(z.frobenius_norm() < TOL);
        assert!(s.one_norm() > 0.0);
    }

    #[test]
    fn identity_matvec_is_noop() {
        let id = SparseMatrix::identity(4);
        let v = vec![c64(1.0, 2.0), c64(0.0, 0.0), c64(-1.0, 0.0), c64(0.5, 0.5)];
        let got = id.matvec(&v);
        for (g, e) in got.iter().zip(v.iter()) {
            assert!(g.approx_eq(*e, TOL));
        }
    }
}
