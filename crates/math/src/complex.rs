//! Minimal complex arithmetic used throughout the workspace.
//!
//! The workspace deliberately avoids an external complex-number dependency: the
//! quantum-simulation kernels only need a small, predictable `Copy` type with
//! inlined arithmetic, and owning the implementation lets the state-vector
//! simulator control layout (`#[repr(C)]`, 16 bytes) for cache-friendly access.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i·im`.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor for a [`Complex64`].
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// Additive identity.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// Multiplicative identity.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit `i`.
    pub const I: Complex64 = c64(0.0, 1.0);

    /// Creates a complex number from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline(always)]
    pub const fn imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// Creates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^{iθ}` on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline(always)]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns NaNs for zero input.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Self {
            re: r * self.im.cos(),
            im: r * self.im.sin(),
        }
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        Self::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Multiply by the imaginary unit (cheaper than a full complex multiply).
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        Self {
            re: -self.im,
            im: self.re,
        }
    }

    /// Multiply by `-i`.
    #[inline(always)]
    pub fn mul_neg_i(self) -> Self {
        Self {
            re: self.im,
            im: -self.re,
        }
    }

    /// Scale by a real factor.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// True when both parts are within `tol` of the other value's.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// True when `|z| <= tol`.
    #[inline]
    pub fn is_approx_zero(self, tol: f64) -> bool {
        self.abs() <= tol
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl From<f64> for Complex64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        Self { re, im: 0.0 }
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    // z / w computed as z · w⁻¹, which clippy flags as a suspicious `*`.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn div(self, rhs: f64) -> Self {
        Self {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn basic_arithmetic() {
        let a = c64(1.0, 2.0);
        let b = c64(3.0, -1.0);
        assert!((a + b).approx_eq(c64(4.0, 1.0), TOL));
        assert!((a - b).approx_eq(c64(-2.0, 3.0), TOL));
        assert!((a * b).approx_eq(c64(5.0, 5.0), TOL));
        assert!((-a).approx_eq(c64(-1.0, -2.0), TOL));
    }

    #[test]
    fn division_is_inverse_of_multiplication() {
        let a = c64(1.5, -2.25);
        let b = c64(-0.5, 3.0);
        let q = a / b;
        assert!((q * b).approx_eq(a, TOL));
        assert!((a * a.inv()).approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn conj_and_norm() {
        let a = c64(3.0, 4.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert!((a * a.conj()).approx_eq(c64(25.0, 0.0), TOL));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < TOL);
        assert!((z.arg() - 0.7).abs() < TOL);
    }

    #[test]
    fn exp_matches_euler() {
        let theta = 1.234;
        let z = Complex64::imag(theta).exp();
        assert!(z.approx_eq(Complex64::cis(theta), TOL));
        // e^{iπ} = -1
        assert!(Complex64::imag(std::f64::consts::PI)
            .exp()
            .approx_eq(c64(-1.0, 0.0), TOL));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = c64(-3.0, 4.0);
        let s = z.sqrt();
        assert!((s * s).approx_eq(z, 1e-10));
    }

    #[test]
    fn mul_i_shortcuts() {
        let z = c64(2.0, -5.0);
        assert!(z.mul_i().approx_eq(z * Complex64::I, TOL));
        assert!(z.mul_neg_i().approx_eq(z * -Complex64::I, TOL));
    }

    #[test]
    fn sum_iterator() {
        let v = [c64(1.0, 1.0), c64(2.0, -0.5), c64(-3.0, 0.25)];
        let s: Complex64 = v.iter().sum();
        assert!(s.approx_eq(c64(0.0, 0.75), TOL));
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", c64(1.0, -2.0)), "1.000000-2.000000i");
        assert_eq!(format!("{}", c64(1.0, 2.0)), "1.000000+2.000000i");
    }
}
