//! Bit-string utilities shared by the operator and circuit layers.
//!
//! Convention: qubit `q` of an `n`-qubit register corresponds to bit
//! `n − 1 − q` of the basis-state index, i.e. qubit 0 is the **most
//! significant** bit. This matches the paper's notation, where the operator at
//! tensor position 0 acts on the leftmost digit of `|bin[a]⟩`.

/// Returns the value (0 or 1) of qubit `qubit` in basis-state `index` of an
/// `n`-qubit register (qubit 0 = most significant bit).
#[inline(always)]
pub fn qubit_bit(index: usize, qubit: usize, n: usize) -> u8 {
    debug_assert!(qubit < n);
    ((index >> (n - 1 - qubit)) & 1) as u8
}

/// Sets qubit `qubit` of `index` to `value` (0 or 1).
#[inline(always)]
pub fn with_qubit_bit(index: usize, qubit: usize, n: usize, value: u8) -> usize {
    let pos = n - 1 - qubit;
    if value == 1 {
        index | (1 << pos)
    } else {
        index & !(1 << pos)
    }
}

/// Flips qubit `qubit` of `index`.
#[inline(always)]
pub fn flip_qubit_bit(index: usize, qubit: usize, n: usize) -> usize {
    index ^ (1 << (n - 1 - qubit))
}

/// Converts a slice of per-qubit bit values (qubit 0 first) into a basis index.
pub fn bits_to_index(bits: &[u8]) -> usize {
    bits.iter().fold(0usize, |acc, &b| {
        debug_assert!(b <= 1);
        (acc << 1) | b as usize
    })
}

/// Converts a basis index into per-qubit bit values (qubit 0 first).
pub fn index_to_bits(index: usize, n: usize) -> Vec<u8> {
    (0..n).map(|q| qubit_bit(index, q, n)).collect()
}

/// Formats a basis index as a ket string such as `|0110⟩`.
pub fn format_ket(index: usize, n: usize) -> String {
    let mut s = String::with_capacity(n + 2);
    s.push('|');
    for q in 0..n {
        s.push(if qubit_bit(index, q, n) == 1 {
            '1'
        } else {
            '0'
        });
    }
    s.push('⟩');
    s
}

/// Parity (number of ones mod 2) of `index` restricted to the given qubits.
pub fn parity_on(index: usize, qubits: &[usize], n: usize) -> u8 {
    qubits
        .iter()
        .fold(0u8, |acc, &q| acc ^ qubit_bit(index, q, n))
}

/// Hamming weight of `index`.
#[inline]
pub fn popcount(index: usize) -> u32 {
    index.count_ones()
}

/// Parses a bit string such as `"0110"` into per-qubit values.
///
/// Returns `None` on any character other than `0`/`1`.
pub fn parse_bits(s: &str) -> Option<Vec<u8>> {
    s.chars()
        .map(|c| match c {
            '0' => Some(0u8),
            '1' => Some(1u8),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_zero_is_most_significant() {
        // |10⟩ on 2 qubits is index 2.
        assert_eq!(bits_to_index(&[1, 0]), 2);
        assert_eq!(qubit_bit(2, 0, 2), 1);
        assert_eq!(qubit_bit(2, 1, 2), 0);
    }

    #[test]
    fn bits_round_trip() {
        for idx in 0..32usize {
            let bits = index_to_bits(idx, 5);
            assert_eq!(bits_to_index(&bits), idx);
        }
    }

    #[test]
    fn with_and_flip() {
        let idx = bits_to_index(&[1, 0, 1]);
        assert_eq!(with_qubit_bit(idx, 1, 3, 1), bits_to_index(&[1, 1, 1]));
        assert_eq!(with_qubit_bit(idx, 0, 3, 0), bits_to_index(&[0, 0, 1]));
        assert_eq!(flip_qubit_bit(idx, 2, 3), bits_to_index(&[1, 0, 0]));
    }

    #[test]
    fn ket_formatting_and_parsing() {
        assert_eq!(format_ket(5, 4), "|0101⟩");
        assert_eq!(parse_bits("0101"), Some(vec![0, 1, 0, 1]));
        assert_eq!(parse_bits("01x1"), None);
    }

    #[test]
    fn parity_and_popcount() {
        let idx = bits_to_index(&[1, 1, 0, 1]);
        assert_eq!(parity_on(idx, &[0, 1], 4), 0);
        assert_eq!(parity_on(idx, &[0, 2], 4), 1);
        assert_eq!(popcount(idx), 3);
    }

    #[test]
    fn paper_example_1222_1145() {
        // The paper's §V-D example: a = 1222 = 10011000110₂ (11 bits),
        // b = 1145 = 10001111001₂.
        assert_eq!(bits_to_index(&parse_bits("10011000110").unwrap()), 1222);
        assert_eq!(bits_to_index(&parse_bits("10001111001").unwrap()), 1145);
    }
}
