//! Matrix exponentials and exponential actions.
//!
//! Verification of the paper's circuits requires the exact unitary
//! `exp(-iθH)` for Hermitian `H`. Two code paths are provided:
//!
//! * [`expm`] — dense scaling-and-squaring with a Taylor series, adequate for
//!   the ≤ 2¹⁰-dimensional verification matrices;
//! * [`expm_multiply`] — the action `exp(A)·v` for sparse `A` using the scaled
//!   truncated-Taylor scheme, which is what makes verification of the 15-qubit
//!   Fig. 2 example tractable without ever materialising a 32768² matrix.

use crate::complex::Complex64;
use crate::dense::CMatrix;
use crate::sparse::SparseMatrix;

/// Dense matrix exponential `exp(A)` via scaling-and-squaring + Taylor series.
///
/// The input is scaled by `2^-s` so that its 1-norm is below 0.5, a Taylor
/// series is summed until terms fall below machine-level tolerance, and the
/// result is squared `s` times. For the Hermitian/anti-Hermitian inputs used
/// throughout the workspace this is numerically robust.
pub fn expm(a: &CMatrix) -> CMatrix {
    assert!(a.is_square(), "expm requires a square matrix");
    let n = a.rows();
    let norm = a.one_norm();
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let scaled = a.scale(Complex64::real(1.0 / f64::powi(2.0, s as i32)));

    let mut result = CMatrix::identity(n);
    let mut term = CMatrix::identity(n);
    // Taylor series on the scaled matrix: with ‖A‖ ≤ 0.5 thirty terms reach
    // well below double-precision round-off.
    for k in 1..=30u32 {
        term = term.matmul(&scaled).scale(Complex64::real(1.0 / k as f64));
        result.add_scaled(&term, Complex64::ONE);
        if term.max_norm() < 1e-18 {
            break;
        }
    }
    for _ in 0..s {
        result = result.matmul(&result);
    }
    result
}

/// Unitary `exp(-iθH)` for a Hermitian matrix `H`.
pub fn expm_minus_i_theta(h: &CMatrix, theta: f64) -> CMatrix {
    expm(&h.scale(Complex64::new(0.0, -theta)))
}

/// Unitary `exp(+iθH)` for a Hermitian matrix `H`.
pub fn expm_plus_i_theta(h: &CMatrix, theta: f64) -> CMatrix {
    expm(&h.scale(Complex64::new(0.0, theta)))
}

/// Computes `exp(scale · A) · v` for sparse `A` without forming `exp(A)`.
///
/// Uses the same scaling idea as [`expm`]: pick `s` so that
/// `‖scale·A‖₁ / s ≤ 0.5`, then apply `s` successive truncated Taylor
/// expansions of `exp(scale·A / s)` to the vector.
pub fn expm_multiply(a: &SparseMatrix, scale: Complex64, v: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(a.rows(), a.cols(), "expm_multiply requires a square matrix");
    assert_eq!(a.cols(), v.len(), "dimension mismatch");
    let norm = a.one_norm() * scale.abs();
    let s = if norm > 0.5 {
        (norm / 0.5).ceil() as usize
    } else {
        1
    };
    let step = scale / s as f64;

    let mut current = v.to_vec();
    for _ in 0..s {
        let mut acc = current.clone();
        let mut term = current.clone();
        for k in 1..=40u32 {
            // term <- (step/k) * A * term
            let av = a.matvec(&term);
            let coeff = step / k as f64;
            let mut max_mag: f64 = 0.0;
            for (t, x) in term.iter_mut().zip(av.iter()) {
                *t = *x * coeff;
                max_mag = max_mag.max(t.abs());
            }
            for (o, t) in acc.iter_mut().zip(term.iter()) {
                *o += *t;
            }
            if max_mag < 1e-16 {
                break;
            }
        }
        current = acc;
    }
    current
}

/// Computes `exp(-iθ H) · v` for sparse Hermitian `H`.
pub fn expm_multiply_minus_i_theta(
    h: &SparseMatrix,
    theta: f64,
    v: &[Complex64],
) -> Vec<Complex64> {
    expm_multiply(h, Complex64::new(0.0, -theta), v)
}

/// Euclidean norm of a complex vector.
pub fn vec_norm(v: &[Complex64]) -> f64 {
    v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// Inner product `⟨a|b⟩` (conjugate-linear in the first argument).
pub fn vec_inner(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x.conj() * *y).sum()
}

/// Euclidean distance between two complex vectors.
pub fn vec_distance(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (*x - *y).norm_sqr())
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    const TOL: f64 = 1e-10;

    fn pauli_x() -> CMatrix {
        CMatrix::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]])
    }

    fn pauli_z() -> CMatrix {
        CMatrix::from_real_rows(&[&[1.0, 0.0], &[0.0, -1.0]])
    }

    #[test]
    fn exp_of_zero_is_identity() {
        let z = CMatrix::zeros(3, 3);
        assert!(expm(&z).approx_eq(&CMatrix::identity(3), TOL));
    }

    #[test]
    fn exp_of_diagonal() {
        let d = CMatrix::from_diagonal(&[c64(1.0, 0.0), c64(0.0, 2.0), c64(-1.0, -1.0)]);
        let e = expm(&d);
        for (i, &lam) in [c64(1.0, 0.0), c64(0.0, 2.0), c64(-1.0, -1.0)]
            .iter()
            .enumerate()
        {
            assert!(e[(i, i)].approx_eq(lam.exp(), TOL));
        }
        assert!(e[(0, 1)].is_approx_zero(TOL));
    }

    #[test]
    fn exp_minus_i_theta_x_is_rx() {
        // exp(-iθX) = cos θ I - i sin θ X  (note: RX(φ) = exp(-i φ X / 2))
        let theta = 0.81;
        let u = expm_minus_i_theta(&pauli_x(), theta);
        let expect = CMatrix::from_rows(&[
            &[c64(theta.cos(), 0.0), c64(0.0, -theta.sin())],
            &[c64(0.0, -theta.sin()), c64(theta.cos(), 0.0)],
        ]);
        assert!(u.approx_eq(&expect, TOL));
        assert!(u.is_unitary(TOL));
    }

    #[test]
    fn exp_minus_i_theta_z_is_phase() {
        let theta = 2.3;
        let u = expm_minus_i_theta(&pauli_z(), theta);
        assert!(u[(0, 0)].approx_eq(Complex64::cis(-theta), TOL));
        assert!(u[(1, 1)].approx_eq(Complex64::cis(theta), TOL));
    }

    #[test]
    fn exp_large_norm_matrix_scaling_squaring() {
        // 10·X has eigenvalues ±10; exp should still be accurate.
        let a = pauli_x().scale(c64(10.0, 0.0));
        let e = expm(&a);
        let expect_diag = 10f64.cosh();
        let expect_off = 10f64.sinh();
        assert!((e[(0, 0)].re - expect_diag).abs() / expect_diag < 1e-9);
        assert!((e[(0, 1)].re - expect_off).abs() / expect_off < 1e-9);
    }

    #[test]
    fn expm_multiply_matches_dense() {
        // Random-ish 8x8 Hermitian built from a tridiagonal pattern.
        let mut coo = crate::sparse::CooMatrix::new(8, 8);
        for i in 0..8 {
            coo.push(i, i, c64(i as f64 * 0.3 - 1.0, 0.0));
            if i + 1 < 8 {
                coo.push(i, i + 1, c64(0.5, 0.2));
                coo.push(i + 1, i, c64(0.5, -0.2));
            }
        }
        let h = coo.to_csr();
        assert!(h.is_hermitian(1e-12));
        let v: Vec<Complex64> = (0..8)
            .map(|i| c64(1.0 / (i as f64 + 1.0), 0.1 * i as f64))
            .collect();
        let theta = 0.77;
        let got = expm_multiply_minus_i_theta(&h, theta, &v);
        let expect = expm_minus_i_theta(&h.to_dense(), theta).matvec(&v);
        assert!(vec_distance(&got, &expect) < 1e-9);
        // unitarity: norm preserved
        assert!((vec_norm(&got) - vec_norm(&v)).abs() < 1e-9);
    }

    #[test]
    fn vector_helpers() {
        let a = vec![c64(1.0, 0.0), c64(0.0, 1.0)];
        let b = vec![c64(0.0, 1.0), c64(1.0, 0.0)];
        assert!((vec_norm(&a) - 2f64.sqrt()).abs() < TOL);
        let ip = vec_inner(&a, &b);
        assert!(ip.approx_eq(c64(0.0, 0.0), TOL));
        assert!((vec_distance(&a, &a) - 0.0).abs() < TOL);
    }
}
