//! Four-wide f64 lane arrays for the split (SoA) complex kernels.
//!
//! The state-vector kernels process four **independent** amplitude groups
//! per iteration by splitting complex numbers into separate real/imaginary
//! lane arrays ([`C64x4`]). Every lane operation is elementwise and mirrors
//! the exact operation sequence of the scalar [`Complex64`] arithmetic
//! (`re = a.re*b.re - a.im*b.im; im = a.re*b.im + a.im*b.re`, additions in
//! the same order), and Rust never contracts `a*b + c` into a fused
//! multiply-add implicitly — so the lane kernels are **bit-identical** to
//! the scalar path by construction, not merely close. The scalar kernels
//! stay in the tree as the oracle; the property suites assert exact
//! equality between the two.
//!
//! The types compile to plain `[f64; 4]` arithmetic that LLVM
//! auto-vectorizes for the target's widest available lanes (two SSE2
//! `mulpd`/`addpd` pairs at the default x86-64 baseline, one AVX `ymm` op
//! when the target supports it). No `core::arch` intrinsics, no `unsafe`,
//! no target-feature gates — portable by construction.

use crate::complex::Complex64;
use std::ops::{Add, AddAssign, Mul, Sub};

/// Four f64 lanes with elementwise arithmetic.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(transparent)]
pub struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// All four lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        F64x4([v; 4])
    }

    /// All four lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        F64x4([0.0; 4])
    }

    /// Sum of the four lanes, left to right.
    #[inline(always)]
    pub fn reduce_add(self) -> f64 {
        ((self.0[0] + self.0[1]) + self.0[2]) + self.0[3]
    }
}

impl Add for F64x4 {
    type Output = F64x4;
    #[inline(always)]
    fn add(self, rhs: F64x4) -> F64x4 {
        F64x4([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
        ])
    }
}

impl Sub for F64x4 {
    type Output = F64x4;
    #[inline(always)]
    fn sub(self, rhs: F64x4) -> F64x4 {
        F64x4([
            self.0[0] - rhs.0[0],
            self.0[1] - rhs.0[1],
            self.0[2] - rhs.0[2],
            self.0[3] - rhs.0[3],
        ])
    }
}

impl Mul for F64x4 {
    type Output = F64x4;
    #[inline(always)]
    fn mul(self, rhs: F64x4) -> F64x4 {
        F64x4([
            self.0[0] * rhs.0[0],
            self.0[1] * rhs.0[1],
            self.0[2] * rhs.0[2],
            self.0[3] * rhs.0[3],
        ])
    }
}

impl AddAssign for F64x4 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: F64x4) {
        *self = *self + rhs;
    }
}

/// Four complex numbers in split (SoA) real/imaginary layout.
///
/// The product mirrors [`Complex64`]'s `Mul` exactly, lane by lane:
/// `re = a.re*b.re - a.im*b.im`, `im = a.re*b.im + a.im*b.re`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct C64x4 {
    /// Real parts of the four lanes.
    pub re: F64x4,
    /// Imaginary parts of the four lanes.
    pub im: F64x4,
}

impl C64x4 {
    /// All four lanes set to `z`.
    #[inline(always)]
    pub fn splat(z: Complex64) -> Self {
        C64x4 {
            re: F64x4::splat(z.re),
            im: F64x4::splat(z.im),
        }
    }

    /// All four lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        C64x4 {
            re: F64x4::zero(),
            im: F64x4::zero(),
        }
    }

    /// Gathers four complex values into split layout.
    #[inline(always)]
    pub fn gather(a: Complex64, b: Complex64, c: Complex64, d: Complex64) -> Self {
        C64x4 {
            re: F64x4([a.re, b.re, c.re, d.re]),
            im: F64x4([a.im, b.im, c.im, d.im]),
        }
    }

    /// Scatters the four lanes back to interleaved complex values.
    #[inline(always)]
    pub fn scatter(self) -> [Complex64; 4] {
        [self.lane(0), self.lane(1), self.lane(2), self.lane(3)]
    }

    /// The `k`-th lane as a scalar complex number.
    #[inline(always)]
    pub fn lane(self, k: usize) -> Complex64 {
        Complex64 {
            re: self.re.0[k],
            im: self.im.0[k],
        }
    }
}

impl Add for C64x4 {
    type Output = C64x4;
    #[inline(always)]
    fn add(self, rhs: C64x4) -> C64x4 {
        C64x4 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Mul for C64x4 {
    type Output = C64x4;
    #[inline(always)]
    fn mul(self, rhs: C64x4) -> C64x4 {
        C64x4 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl AddAssign for C64x4 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: C64x4) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    #[test]
    fn lane_product_is_bit_identical_to_scalar() {
        // Awkward values (subnormal-adjacent, irrational, sign-mixed) so any
        // reassociation or FMA contraction would change the bits.
        let xs = [
            c64(0.1, -0.7),
            c64(1.0e-160, 3.3),
            c64(-2.5000000000000004, 1.0e16),
            c64(std::f64::consts::PI, -std::f64::consts::E),
        ];
        let ys = [
            c64(-0.30000000000000004, 0.2),
            c64(7.7, -1.0e-9),
            c64(1.0 / 3.0, 2.0 / 3.0),
            c64(-1.0e-300, 4.4),
        ];
        let a = C64x4::gather(xs[0], xs[1], xs[2], xs[3]);
        let b = C64x4::gather(ys[0], ys[1], ys[2], ys[3]);
        let prod = a * b;
        let sum = a + b;
        let mut acc = C64x4::splat(c64(0.5, -0.25));
        acc += prod;
        for k in 0..4 {
            let sp = xs[k] * ys[k];
            assert_eq!(prod.lane(k).re.to_bits(), sp.re.to_bits());
            assert_eq!(prod.lane(k).im.to_bits(), sp.im.to_bits());
            let ss = xs[k] + ys[k];
            assert_eq!(sum.lane(k).re.to_bits(), ss.re.to_bits());
            let mut sa = c64(0.5, -0.25);
            sa += sp;
            assert_eq!(acc.lane(k).re.to_bits(), sa.re.to_bits());
            assert_eq!(acc.lane(k).im.to_bits(), sa.im.to_bits());
        }
    }

    #[test]
    fn gather_scatter_round_trips() {
        let v = [c64(1.0, 2.0), c64(3.0, 4.0), c64(5.0, 6.0), c64(7.0, 8.0)];
        let lanes = C64x4::gather(v[0], v[1], v[2], v[3]);
        assert_eq!(lanes.scatter(), v);
    }

    #[test]
    fn reduce_add_is_left_to_right() {
        let v = F64x4([1.0e16, 1.0, -1.0e16, 2.0]);
        // ((1e16 + 1) + -1e16) + 2 — the +1 is absorbed at 1e16 scale.
        assert_eq!(v.reduce_add(), ((1.0e16 + 1.0) + -1.0e16) + 2.0);
    }
}
