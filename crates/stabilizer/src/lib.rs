//! Aaronson–Gottesman stabilizer simulation.
//!
//! Dense statevector engines pay `O(2^n)` memory and time per sweep, which
//! caps every workload at a few dozen qubits. Circuits built only from
//! **Clifford** gates (H, S, S†, the Paulis, CX, CZ, SWAP) admit an exact
//! classical simulation in `O(n²)` bits of state: the stabilizer tableau of
//! Aaronson & Gottesman ("Improved simulation of stabilizer circuits",
//! PRA 70, 052328, 2004). This crate implements that engine, bit-packed in
//! `u64` words:
//!
//! * [`StabilizerState`] — the tableau: `2n` Pauli rows (destabilizers +
//!   stabilizer generators) with X/Z bit-matrices and a sign column, gate
//!   conjugation in `O(n)` per Clifford gate, computational-basis
//!   measurement with caller-supplied randomness, Pauli expectation values
//!   read directly off the tableau, and exact dense probabilities for small
//!   registers;
//! * [`BitString`] — bit-packed measurement records, because outcomes of a
//!   1000-qubit register do not fit a `usize` basis index;
//! * [`NonCliffordGate`] — the typed rejection for gates outside the
//!   Clifford vocabulary (the engine never silently approximates).
//!
//! The `ghs_core` backend registry exposes this engine as the
//! `"stabilizer"` backend; its seeded shot path collapses one tableau clone
//! per shot from per-shot derived RNG streams, so sampling is bit-identical
//! across thread counts — the same determinism contract as the dense
//! engines.
//!
//! ```
//! use ghs_circuit::Circuit;
//! use ghs_stabilizer::StabilizerState;
//!
//! // A 1000-qubit GHZ ladder is far beyond any dense engine, and a few
//! // microseconds of tableau work here.
//! let n = 1000;
//! let mut ghz = Circuit::new(n);
//! ghz.h(0);
//! for q in 0..n - 1 {
//!     ghz.cx(q, q + 1);
//! }
//! let mut state = StabilizerState::zero_state(n);
//! state.apply_circuit(&ghz).unwrap();
//! // End-to-end parity is a stabilizer: ⟨Z_0 Z_999⟩ = +1.
//! assert_eq!(state.expectation_z(&[0, n - 1]), 1.0);
//! ```

mod bits;
mod tableau;

pub use bits::BitString;
pub use tableau::{NonCliffordGate, StabilizerState, STABILIZER_DENSE_MAX_QUBITS};
