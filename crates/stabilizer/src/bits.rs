//! Wide measurement records: bit-packed outcome strings for registers that
//! do not fit a `usize` basis-state index.

use std::fmt;

/// A computational-basis measurement record over an arbitrarily wide
/// register, bit-packed in `u64` words (bit `q` of the string is the outcome
/// of qubit `q`).
///
/// Dense backends index basis states with a `usize`, which caps the register
/// at the machine word. The stabilizer engine samples registers of thousands
/// of qubits, so its native shot path returns `BitString`s;
/// [`BitString::to_index`] converts back to the dense convention whenever
/// the register still fits.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BitString {
    len: usize,
    words: Vec<u64>,
}

impl BitString {
    /// The all-zeros string over `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0u64; len.div_ceil(64)],
        }
    }

    /// Unpacks a dense basis-state index. The dense engines write kets
    /// big-endian — qubit `q` sits at bit `len − 1 − q` of the amplitude
    /// index — so that is the mapping used here and in
    /// [`BitString::to_index`].
    ///
    /// # Panics
    /// Panics when `index` has a set bit at or above `len`.
    pub fn from_index(len: usize, index: usize) -> Self {
        assert!(
            len >= usize::BITS as usize || index < (1usize << len),
            "basis index {index} out of range for a {len}-qubit register"
        );
        let mut s = Self::zeros(len);
        for q in 0..len {
            let pos = len - 1 - q;
            if pos < usize::BITS as usize && (index >> pos) & 1 == 1 {
                s.set(q, true);
            }
        }
        s
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the register is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `q`.
    pub fn get(&self, q: usize) -> bool {
        assert!(q < self.len, "bit {q} out of range for {} bits", self.len);
        self.words[q >> 6] & (1u64 << (q & 63)) != 0
    }

    /// Sets bit `q`.
    pub fn set(&mut self, q: usize, bit: bool) {
        assert!(q < self.len, "bit {q} out of range for {} bits", self.len);
        let mask = 1u64 << (q & 63);
        if bit {
            self.words[q >> 6] |= mask;
        } else {
            self.words[q >> 6] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The packed words (little-endian: word 0 holds bits 0–63).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The dense basis-state index `Some(Σ b_q·2^(len−1−q))` — the
    /// big-endian convention of the dense engines — when every set bit maps
    /// below [`usize::BITS`]; `None` when the outcome does not fit a
    /// machine-word index.
    pub fn to_index(&self) -> Option<usize> {
        let mut index = 0usize;
        for q in 0..self.len {
            if self.get(q) {
                let pos = self.len - 1 - q;
                if pos >= usize::BITS as usize {
                    return None;
                }
                index |= 1usize << pos;
            }
        }
        Some(index)
    }
}

impl fmt::Display for BitString {
    /// Qubit 0 first — the dense engines' big-endian ket `|q₀q₁…⟩`, so the
    /// rendered string is the binary form of [`BitString::to_index`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for q in 0..self.len {
            write!(f, "{}", u8::from(self.get(q)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip_and_display() {
        // Dense big-endian: qubit q is bit len−1−q of the index, so index
        // 0b10110 over 5 qubits sets qubits 0, 2 and 3.
        let s = BitString::from_index(5, 0b10110);
        assert_eq!(s.to_index(), Some(0b10110));
        assert_eq!(s.count_ones(), 3);
        assert!(s.get(0) && s.get(2) && s.get(3));
        assert!(!s.get(1) && !s.get(4));
        assert_eq!(s.to_string(), "10110");
    }

    #[test]
    fn wide_strings_set_bits_beyond_word_zero() {
        let mut s = BitString::zeros(200);
        s.set(10, true);
        assert_eq!(s.count_ones(), 1);
        assert!(s.get(10));
        assert_eq!(
            s.to_index(),
            None,
            "qubit 10 of 200 maps to index bit 189 — no usize index"
        );
        s.set(10, false);
        assert_eq!(s.to_index(), Some(0));
        // A set bit near the register's tail still maps into a machine word.
        s.set(199, true);
        assert_eq!(s.to_index(), Some(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_index_panics() {
        let _ = BitString::from_index(3, 8);
    }
}
