//! The Aaronson–Gottesman stabilizer tableau.
//!
//! A stabilizer state on `n` qubits is represented by `2n` Pauli rows —
//! `n` destabilizers followed by `n` stabilizer generators — each stored as
//! an X bit-row, a Z bit-row (packed in `u64` words) and a sign bit. Row
//! `(x, z, r)` denotes the Hermitian Pauli
//! `(−1)^r ∏_q i^{x_q z_q} X_q^{x_q} Z_q^{z_q}` (so `x_q = z_q = 1` is a
//! literal `Y_q`). Clifford gates conjugate every row in `O(n)` bit
//! operations per gate; measurement costs `O(n²/64)` word operations in the
//! worst case (see Aaronson & Gottesman, PRA 70, 052328, 2004).

use crate::bits::BitString;
use ghs_circuit::{Circuit, Gate};
use rand::RngCore;
use std::fmt;

/// A gate outside the tableau's Clifford vocabulary
/// (H/S/S†/X/Y/Z/CX/CZ/SWAP, plus the register-invisible global phase).
///
/// The stabilizer backend maps this to a typed
/// `BackendError::UnsupportedCircuit` — non-Clifford circuits are rejected,
/// never mis-simulated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NonCliffordGate {
    /// Display form of the offending gate.
    pub gate: String,
}

impl fmt::Display for NonCliffordGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gate {} is not Clifford", self.gate)
    }
}

impl std::error::Error for NonCliffordGate {}

/// An `n`-qubit stabilizer state as a bit-packed tableau.
///
/// Supports the Clifford gates H, S, S†, X, Y, Z, CX, CZ and SWAP in `O(n)`
/// each, computational-basis measurement with caller-supplied randomness,
/// Pauli expectation values read straight off the tableau, and exact basis
/// probabilities for small registers. Cloning is `O(n²/64)` words — the
/// seeded shot path collapses a fresh clone per shot.
///
/// ```
/// use ghs_stabilizer::StabilizerState;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// // A Bell pair: measuring both qubits always gives correlated bits.
/// let mut rng = StdRng::seed_from_u64(7);
/// for _ in 0..20 {
///     let mut bell = StabilizerState::zero_state(2);
///     bell.apply_h(0);
///     bell.apply_cx(0, 1);
///     let a = bell.measure(0, &mut rng);
///     let b = bell.measure(1, &mut rng);
///     assert_eq!(a, b);
/// }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StabilizerState {
    n: usize,
    /// Words per bit-row: `ceil(n / 64)`.
    words: usize,
    /// X bit-rows, `2n` rows of `words` words (destabilizers first).
    x: Vec<u64>,
    /// Z bit-rows, same layout.
    z: Vec<u64>,
    /// Sign bit per row (`0` = `+`, `1` = `−`).
    r: Vec<u8>,
}

/// Largest register for which [`StabilizerState::basis_probabilities`]
/// materializes the dense `2^n` vector.
pub const STABILIZER_DENSE_MAX_QUBITS: usize = 16;

/// The exponent of `i` accumulated when multiplying the Pauli row
/// `(x1, z1)` into the Pauli row `(x2, z2)`, summed over one 64-bit word of
/// sites (the paper's `g` function, evaluated branch-free on word masks).
fn g_word(x1: u64, z1: u64, x2: u64, z2: u64) -> i64 {
    let y1 = x1 & z1; // site of row 1 is Y: g = z2 − x2
    let xo = x1 & !z1; // site of row 1 is X: g = z2·(2·x2 − 1)
    let zo = z1 & !x1; // site of row 1 is Z: g = x2·(1 − 2·z2)
    let plus = (y1 & !x2 & z2) | (xo & x2 & z2) | (zo & x2 & !z2);
    let minus = (y1 & x2 & !z2) | (xo & !x2 & z2) | (zo & x2 & z2);
    plus.count_ones() as i64 - minus.count_ones() as i64
}

impl StabilizerState {
    /// The all-zeros computational-basis state `|0…0⟩`: destabilizer `i` is
    /// `X_i`, stabilizer `i` is `Z_i`.
    pub fn zero_state(n: usize) -> Self {
        assert!(n > 0, "register must hold at least one qubit");
        let words = n.div_ceil(64);
        let mut s = Self {
            n,
            words,
            x: vec![0u64; 2 * n * words],
            z: vec![0u64; 2 * n * words],
            r: vec![0u8; 2 * n],
        };
        for i in 0..n {
            let (w, m) = (i >> 6, 1u64 << (i & 63));
            s.x[i * words + w] |= m; // destabilizer i = X_i
            s.z[(n + i) * words + w] |= m; // stabilizer i = Z_i
        }
        s
    }

    /// The computational-basis state `|index⟩` in the dense engines'
    /// big-endian convention: qubit `q` reads bit `n − 1 − q` of `index`
    /// (qubits whose bit position falls outside the machine word stay 0).
    pub fn basis_state(n: usize, index: usize) -> Self {
        assert!(
            n >= usize::BITS as usize || index < (1usize << n),
            "basis index {index} out of range for a {n}-qubit register"
        );
        let mut s = Self::zero_state(n);
        for q in 0..n {
            let pos = n - 1 - q;
            if pos < usize::BITS as usize && (index >> pos) & 1 == 1 {
                s.apply_x(q);
            }
        }
        s
    }

    /// Register size.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    #[inline]
    fn x_bit(&self, row: usize, q: usize) -> bool {
        self.x[row * self.words + (q >> 6)] & (1u64 << (q & 63)) != 0
    }

    /// Row `h` ← row `h` · row `i` (the paper's `rowsum(h, i)`), with exact
    /// sign tracking through the word-parallel `g` sum.
    fn rowsum(&mut self, h: usize, i: usize) {
        let (hb, ib) = (h * self.words, i * self.words);
        let mut g = 0i64;
        for k in 0..self.words {
            g += g_word(
                self.x[ib + k],
                self.z[ib + k],
                self.x[hb + k],
                self.z[hb + k],
            );
        }
        let total = 2 * i64::from(self.r[h]) + 2 * i64::from(self.r[i]) + g;
        // Stabilizer generators mutually commute, so a stabilizer-row target
        // always lands on a Hermitian (±1-phase) row. Destabilizer rows may
        // anticommute with the pivot; their phase bits are never read, so
        // the truncated phase below is harmless there (the paper's
        // convention).
        debug_assert!(
            h < self.n || total.rem_euclid(2) == 0,
            "rowsum produced a non-Hermitian stabilizer row"
        );
        self.r[h] = (total.rem_euclid(4) / 2) as u8;
        for k in 0..self.words {
            self.x[hb + k] ^= self.x[ib + k];
            self.z[hb + k] ^= self.z[ib + k];
        }
    }

    /// Multiplies tableau row `i` into an external accumulator row, tracking
    /// the full mod-4 phase (`i^phase` relative to the accumulator's literal
    /// Pauli form).
    fn accumulate(&self, sx: &mut [u64], sz: &mut [u64], phase: &mut i64, i: usize) {
        let ib = i * self.words;
        let mut g = 0i64;
        for k in 0..self.words {
            g += g_word(self.x[ib + k], self.z[ib + k], sx[k], sz[k]);
        }
        *phase = (*phase + 2 * i64::from(self.r[i]) + g).rem_euclid(4);
        for k in 0..self.words {
            sx[k] ^= self.x[ib + k];
            sz[k] ^= self.z[ib + k];
        }
    }

    /// Hadamard on `q`: swaps the X/Z columns, sign flips where both are set.
    pub fn apply_h(&mut self, q: usize) {
        let (w, m) = (q >> 6, 1u64 << (q & 63));
        for row in 0..2 * self.n {
            let idx = row * self.words + w;
            let (xb, zb) = (self.x[idx] & m, self.z[idx] & m);
            self.r[row] ^= u8::from(xb != 0 && zb != 0);
            let diff = xb ^ zb;
            self.x[idx] ^= diff;
            self.z[idx] ^= diff;
        }
    }

    /// Phase gate S on `q`.
    pub fn apply_s(&mut self, q: usize) {
        let (w, m) = (q >> 6, 1u64 << (q & 63));
        for row in 0..2 * self.n {
            let idx = row * self.words + w;
            let (xb, zb) = (self.x[idx] & m, self.z[idx] & m);
            self.r[row] ^= u8::from(xb != 0 && zb != 0);
            self.z[idx] ^= xb;
        }
    }

    /// Inverse phase gate S† on `q`.
    pub fn apply_sdg(&mut self, q: usize) {
        let (w, m) = (q >> 6, 1u64 << (q & 63));
        for row in 0..2 * self.n {
            let idx = row * self.words + w;
            let (xb, zb) = (self.x[idx] & m, self.z[idx] & m);
            self.r[row] ^= u8::from(xb != 0 && zb == 0);
            self.z[idx] ^= xb;
        }
    }

    /// Pauli X on `q`.
    pub fn apply_x(&mut self, q: usize) {
        let (w, m) = (q >> 6, 1u64 << (q & 63));
        for row in 0..2 * self.n {
            self.r[row] ^= u8::from(self.z[row * self.words + w] & m != 0);
        }
    }

    /// Pauli Y on `q`.
    pub fn apply_y(&mut self, q: usize) {
        let (w, m) = (q >> 6, 1u64 << (q & 63));
        for row in 0..2 * self.n {
            let idx = row * self.words + w;
            self.r[row] ^= u8::from((self.x[idx] & m != 0) != (self.z[idx] & m != 0));
        }
    }

    /// Pauli Z on `q`.
    pub fn apply_z(&mut self, q: usize) {
        let (w, m) = (q >> 6, 1u64 << (q & 63));
        for row in 0..2 * self.n {
            self.r[row] ^= u8::from(self.x[row * self.words + w] & m != 0);
        }
    }

    /// CNOT with control `c` and target `t`.
    pub fn apply_cx(&mut self, c: usize, t: usize) {
        assert_ne!(c, t, "CX control and target must differ");
        let (wc, mc) = (c >> 6, 1u64 << (c & 63));
        let (wt, mt) = (t >> 6, 1u64 << (t & 63));
        for row in 0..2 * self.n {
            let b = row * self.words;
            let xc = self.x[b + wc] & mc != 0;
            let zc = self.z[b + wc] & mc != 0;
            let xt = self.x[b + wt] & mt != 0;
            let zt = self.z[b + wt] & mt != 0;
            self.r[row] ^= u8::from(xc && zt && (xt == zc));
            if xc {
                self.x[b + wt] ^= mt;
            }
            if zt {
                self.z[b + wc] ^= mc;
            }
        }
    }

    /// Controlled-Z on `a`, `b` (symmetric).
    pub fn apply_cz(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "CZ qubits must differ");
        let (wa, ma) = (a >> 6, 1u64 << (a & 63));
        let (wb, mb) = (b >> 6, 1u64 << (b & 63));
        for row in 0..2 * self.n {
            let base = row * self.words;
            let xa = self.x[base + wa] & ma != 0;
            let za = self.z[base + wa] & ma != 0;
            let xb = self.x[base + wb] & mb != 0;
            let zb = self.z[base + wb] & mb != 0;
            self.r[row] ^= u8::from(xa && xb && (za != zb));
            if xb {
                self.z[base + wa] ^= ma;
            }
            if xa {
                self.z[base + wb] ^= mb;
            }
        }
    }

    /// SWAP of `a` and `b`: exchanges the two columns in every row.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (wa, ma) = (a >> 6, 1u64 << (a & 63));
        let (wb, mb) = (b >> 6, 1u64 << (b & 63));
        for row in 0..2 * self.n {
            let base = row * self.words;
            for cols in [&mut self.x, &mut self.z] {
                let ba = cols[base + wa] & ma != 0;
                let bb = cols[base + wb] & mb != 0;
                if ba != bb {
                    cols[base + wa] ^= ma;
                    cols[base + wb] ^= mb;
                }
            }
        }
    }

    /// Conjugates the tableau through one circuit gate; global phases are
    /// register-invisible no-ops. Non-Clifford gates are a typed error.
    pub fn apply_gate(&mut self, gate: &Gate) -> Result<(), NonCliffordGate> {
        match *gate {
            Gate::H(q) => self.apply_h(q),
            Gate::X(q) => self.apply_x(q),
            Gate::Y(q) => self.apply_y(q),
            Gate::Z(q) => self.apply_z(q),
            Gate::S(q) => self.apply_s(q),
            Gate::Sdg(q) => self.apply_sdg(q),
            Gate::Cx { control, target } => self.apply_cx(control, target),
            Gate::Cz { a, b } => self.apply_cz(a, b),
            Gate::Swap { a, b } => self.apply_swap(a, b),
            Gate::GlobalPhase(_) => {}
            ref other => {
                return Err(NonCliffordGate {
                    gate: other.to_string(),
                })
            }
        }
        Ok(())
    }

    /// Runs a whole circuit through [`StabilizerState::apply_gate`],
    /// stopping at the first non-Clifford gate.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), NonCliffordGate> {
        assert_eq!(
            circuit.num_qubits(),
            self.n,
            "circuit register does not match the tableau"
        );
        for gate in circuit.gates() {
            self.apply_gate(gate)?;
        }
        Ok(())
    }

    /// The first stabilizer generator with an X factor on `q`, if any — the
    /// measurement of `q` is random exactly when one exists.
    fn pivot(&self, q: usize) -> Option<usize> {
        (self.n..2 * self.n).find(|&row| self.x_bit(row, q))
    }

    /// The outcome of a deterministic measurement of `q` (no stabilizer
    /// anticommutes with `Z_q`): the sign of `Z_q` as a product of
    /// stabilizer generators, accumulated in a scratch row.
    fn deterministic_outcome(&self, q: usize) -> u8 {
        let mut sx = vec![0u64; self.words];
        let mut sz = vec![0u64; self.words];
        let mut phase = 0i64;
        for i in 0..self.n {
            if self.x_bit(i, q) {
                self.accumulate(&mut sx, &mut sz, &mut phase, self.n + i);
            }
        }
        debug_assert_eq!(phase % 2, 0, "deterministic outcome left an i phase");
        (phase / 2) as u8
    }

    /// Collapses a random measurement of `q` onto `outcome`, with `p` the
    /// pivot stabilizer row returned by [`StabilizerState::pivot`].
    fn collapse(&mut self, q: usize, p: usize, outcome: u8) {
        for row in 0..2 * self.n {
            if row != p && self.x_bit(row, q) {
                self.rowsum(row, p);
            }
        }
        // The old pivot generator becomes the destabilizer of the new Z_q
        // stabilizer that replaces it.
        let d = p - self.n;
        let (pb, db) = (p * self.words, d * self.words);
        for k in 0..self.words {
            self.x[db + k] = self.x[pb + k];
            self.z[db + k] = self.z[pb + k];
            self.x[pb + k] = 0;
            self.z[pb + k] = 0;
        }
        self.r[d] = self.r[p];
        self.z[pb + (q >> 6)] = 1u64 << (q & 63);
        self.r[p] = outcome & 1;
    }

    /// Measures qubit `q` in the computational basis, collapsing the state.
    /// Random outcomes draw one bit from `rng`; deterministic outcomes
    /// consume no randomness.
    pub fn measure<R: RngCore>(&mut self, q: usize, rng: &mut R) -> u8 {
        assert!(q < self.n, "qubit {q} out of range");
        match self.pivot(q) {
            Some(p) => {
                let outcome = (rng.next_u64() & 1) as u8;
                self.collapse(q, p, outcome);
                outcome
            }
            None => self.deterministic_outcome(q),
        }
    }

    /// Measures every qubit in index order, returning the packed outcome
    /// string. This is one shot of the stabilizer-native sampling path.
    pub fn measure_all<R: RngCore>(&mut self, rng: &mut R) -> BitString {
        let mut out = BitString::zeros(self.n);
        for q in 0..self.n {
            if self.measure(q, rng) == 1 {
                out.set(q, true);
            }
        }
        out
    }

    /// Whether the Pauli with the given X/Z word masks anticommutes with
    /// tableau row `row`.
    fn anticommutes_with_row(&self, row: usize, xw: &[u64], zw: &[u64]) -> bool {
        let b = row * self.words;
        let mut parity = 0u32;
        for k in 0..self.words {
            parity ^= (self.x[b + k] & zw[k]).count_ones() ^ (self.z[b + k] & xw[k]).count_ones();
        }
        parity & 1 == 1
    }

    /// Expectation value of the Hermitian Pauli with X/Z word masks
    /// `(xw, zw)` (bit `q` of word `q/64`; `x` and `z` both set is a literal
    /// `Y`). On a stabilizer state this is exactly `0`, `+1` or `−1`:
    ///
    /// * `0` when the Pauli anticommutes with some stabilizer generator;
    /// * otherwise `±P` is a product of stabilizer generators — the
    ///   generators whose destabilizer partners anticommute with `P` — and
    ///   the sign of that product is the expectation value.
    pub fn expectation_pauli_words(&self, xw: &[u64], zw: &[u64]) -> f64 {
        assert_eq!(xw.len(), self.words, "X mask has the wrong word count");
        assert_eq!(zw.len(), self.words, "Z mask has the wrong word count");
        for row in self.n..2 * self.n {
            if self.anticommutes_with_row(row, xw, zw) {
                return 0.0;
            }
        }
        let mut sx = vec![0u64; self.words];
        let mut sz = vec![0u64; self.words];
        let mut phase = 0i64;
        for i in 0..self.n {
            if self.anticommutes_with_row(i, xw, zw) {
                self.accumulate(&mut sx, &mut sz, &mut phase, self.n + i);
            }
        }
        debug_assert_eq!(&sx[..], xw, "stabilizer product missed the X mask");
        debug_assert_eq!(&sz[..], zw, "stabilizer product missed the Z mask");
        debug_assert_eq!(phase % 2, 0, "Hermitian Pauli product left an i phase");
        if phase == 2 {
            -1.0
        } else {
            1.0
        }
    }

    /// Expectation value of a Hermitian Pauli given as dense
    /// amplitude-index masks — qubit `q` at bit `n − 1 − q`, the convention
    /// of `PauliString::masks` and the grouped-sum engine. Converts to the
    /// tableau's column layout (qubit `q` at bit `q`) and defers to
    /// [`StabilizerState::expectation_pauli_words`].
    pub fn expectation_dense_masks(&self, x_mask: usize, z_mask: usize) -> f64 {
        assert!(
            self.n <= usize::BITS as usize,
            "dense masks address at most {} qubits, register has {}",
            usize::BITS,
            self.n
        );
        let mut xw = vec![0u64; self.words];
        let mut zw = vec![0u64; self.words];
        for q in 0..self.n {
            let bit = 1usize << (self.n - 1 - q);
            if x_mask & bit != 0 {
                xw[q >> 6] |= 1u64 << (q & 63);
            }
            if z_mask & bit != 0 {
                zw[q >> 6] |= 1u64 << (q & 63);
            }
        }
        self.expectation_pauli_words(&xw, &zw)
    }

    /// Expectation value of a Z-string observable `∏ Z_q` over `qubits`,
    /// straight off the tableau — the wide-register observable path (no
    /// `usize` mask, so it works at thousands of qubits).
    pub fn expectation_z(&self, qubits: &[usize]) -> f64 {
        let xw = vec![0u64; self.words];
        let mut zw = vec![0u64; self.words];
        for &q in qubits {
            assert!(q < self.n, "qubit {q} out of range");
            zw[q >> 6] |= 1u64 << (q & 63);
        }
        self.expectation_pauli_words(&xw, &zw)
    }

    /// Exact measurement probabilities of all `2^n` basis states, by
    /// branching the per-qubit measurement tree (deterministic outcomes
    /// carry their branch's full weight; random outcomes split it in half).
    /// Probabilities of a stabilizer state are exact dyadic rationals, so
    /// the result is exact in floating point.
    ///
    /// # Panics
    /// Panics above [`STABILIZER_DENSE_MAX_QUBITS`] qubits — the caller
    /// (the stabilizer backend) turns that bound into a typed
    /// `RegisterTooLarge` error instead of calling in.
    pub fn basis_probabilities(&self) -> Vec<f64> {
        assert!(
            self.n <= STABILIZER_DENSE_MAX_QUBITS,
            "dense probabilities need 2^n storage; {} qubits exceeds the {} cap",
            self.n,
            STABILIZER_DENSE_MAX_QUBITS
        );
        let mut out = vec![0.0f64; 1usize << self.n];
        let mut stack: Vec<(StabilizerState, usize, usize, f64)> = vec![(self.clone(), 0, 0, 1.0)];
        while let Some((state, q, prefix, weight)) = stack.pop() {
            if q == self.n {
                out[prefix] += weight;
                continue;
            }
            // Dense big-endian indexing: qubit q is bit n−1−q of the index.
            let bit_pos = self.n - 1 - q;
            match state.pivot(q) {
                None => {
                    let bit = state.deterministic_outcome(q) as usize;
                    stack.push((state, q + 1, prefix | (bit << bit_pos), weight));
                }
                Some(p) => {
                    let mut zero = state.clone();
                    let mut one = state;
                    zero.collapse(q, p, 0);
                    one.collapse(q, p, 1);
                    stack.push((zero, q + 1, prefix, weight * 0.5));
                    stack.push((one, q + 1, prefix | (1 << bit_pos), weight * 0.5));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_state_measures_all_zeros_without_randomness() {
        let mut s = StabilizerState::zero_state(5);
        let mut rng = StdRng::seed_from_u64(0);
        let out = s.measure_all(&mut rng);
        assert_eq!(out.count_ones(), 0);
    }

    #[test]
    fn basis_state_measures_back_its_index() {
        let mut s = StabilizerState::basis_state(6, 0b101101);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.measure_all(&mut rng).to_index(), Some(0b101101));
    }

    #[test]
    fn ghz_measurements_are_perfectly_correlated() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 2];
        for _ in 0..64 {
            let mut s = StabilizerState::zero_state(4);
            s.apply_h(0);
            for q in 0..3 {
                s.apply_cx(q, q + 1);
            }
            let out = s.measure_all(&mut rng);
            let ones = out.count_ones();
            assert!(ones == 0 || ones == 4, "GHZ shot mixed: {out}");
            seen[usize::from(ones == 4)] = true;
        }
        assert!(seen[0] && seen[1], "64 GHZ shots never split");
    }

    #[test]
    fn repeated_measurement_is_stable() {
        let mut s = StabilizerState::zero_state(2);
        s.apply_h(0);
        let mut rng = StdRng::seed_from_u64(3);
        let first = s.measure(0, &mut rng);
        for _ in 0..8 {
            assert_eq!(s.measure(0, &mut rng), first);
        }
    }

    #[test]
    fn s_and_sdg_cancel() {
        let mut a = StabilizerState::zero_state(3);
        a.apply_h(1);
        a.apply_s(1);
        a.apply_sdg(1);
        let mut b = StabilizerState::zero_state(3);
        b.apply_h(1);
        assert_eq!(a, b);
    }

    #[test]
    fn cz_matches_h_cx_h_composition() {
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut direct = StabilizerState::zero_state(3);
            let mut composed = StabilizerState::zero_state(3);
            // Scramble both identically with a short Clifford prefix.
            for step in 0..6 {
                let q = (seed as usize + step) % 3;
                direct.apply_h(q);
                composed.apply_h(q);
                direct.apply_s(q);
                composed.apply_s(q);
                direct.apply_cx(q, (q + 1) % 3);
                composed.apply_cx(q, (q + 1) % 3);
            }
            direct.apply_cz(0, 2);
            composed.apply_h(2);
            composed.apply_cx(0, 2);
            composed.apply_h(2);
            assert_eq!(direct, composed, "seed {seed}");
            // And the states keep agreeing through measurement.
            let mut rng2 = rng.clone();
            assert_eq!(
                direct.measure_all(&mut rng),
                composed.measure_all(&mut rng2)
            );
        }
    }

    #[test]
    fn z_expectations_on_known_states() {
        // ⟨0|Z|0⟩ = 1, ⟨1|Z|1⟩ = −1, ⟨+|Z|+⟩ = 0.
        let s = StabilizerState::zero_state(3);
        assert_eq!(s.expectation_z(&[0]), 1.0);
        let mut flipped = StabilizerState::zero_state(3);
        flipped.apply_x(2);
        assert_eq!(flipped.expectation_z(&[2]), -1.0);
        assert_eq!(flipped.expectation_z(&[0, 2]), -1.0);
        let mut plus = StabilizerState::zero_state(3);
        plus.apply_h(1);
        assert_eq!(plus.expectation_z(&[1]), 0.0);
        // GHZ: single-qubit ⟨Z⟩ vanishes, the full parity is +1.
        let mut ghz = StabilizerState::zero_state(3);
        ghz.apply_h(0);
        ghz.apply_cx(0, 1);
        ghz.apply_cx(1, 2);
        assert_eq!(ghz.expectation_z(&[0]), 0.0);
        assert_eq!(ghz.expectation_z(&[0, 1]), 1.0);
        assert_eq!(ghz.expectation_z(&[0, 1, 2]), 0.0);
    }

    #[test]
    fn bell_probabilities_are_exact() {
        let mut bell = StabilizerState::zero_state(2);
        bell.apply_h(0);
        bell.apply_cx(0, 1);
        assert_eq!(bell.basis_probabilities(), vec![0.5, 0.0, 0.0, 0.5]);
    }

    #[test]
    fn non_clifford_gates_are_rejected() {
        let mut s = StabilizerState::zero_state(2);
        let err = s.apply_gate(&Gate::T(0)).unwrap_err();
        assert!(err.gate.contains('T'), "got {err}");
        assert!(s
            .apply_gate(&Gate::Rx {
                qubit: 1,
                theta: 0.3
            })
            .is_err());
    }

    #[test]
    fn wide_registers_cross_word_boundaries() {
        // A 130-qubit GHZ chain spans three words; parity structure must
        // survive the boundary crossings.
        let n = 130;
        let mut s = StabilizerState::zero_state(n);
        s.apply_h(0);
        for q in 0..n - 1 {
            s.apply_cx(q, q + 1);
        }
        assert_eq!(s.expectation_z(&[0, n - 1]), 1.0);
        assert_eq!(s.expectation_z(&[63, 64]), 1.0);
        assert_eq!(s.expectation_z(&[n - 1]), 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        let shot = s.measure_all(&mut rng);
        let ones = shot.count_ones();
        assert!(ones == 0 || ones == n, "GHZ shot mixed at width {n}");
    }
}
