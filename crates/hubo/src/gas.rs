//! Grover Adaptive Search for HUBO problems (§V-A-1 of the paper).
//!
//! The paper traces the origin of the direct strategy to Gilliam et al.'s
//! Grover Adaptive Search, which reads a polynomial cost function into a
//! value register "without the usual Pauli strings" — i.e. exactly with the
//! multi-controlled-phase exponentials of the direct strategy. This module
//! rebuilds that machinery on top of the library:
//!
//! * [`cost_register_circuit`] — a QPE-style circuit that writes the integer
//!   cost `C(x) (mod 2^m)` of every basis assignment `x` into an `m`-bit
//!   value register, using one **direct phase separator** per value bit;
//! * [`grover_adaptive_search`] — the adaptive-threshold Grover loop that
//!   repeatedly marks assignments with `C(x) < threshold` (a single `Z` on
//!   the value register's sign bit after shifting by the threshold) and
//!   amplifies them.

use crate::circuits::direct_phase_separator;
use crate::problem::HuboProblem;
use ghs_circuit::{inverse_qft, Circuit, ControlBit, Gate};
use ghs_core::backend::{Backend, FusedStatevector, InitialState};
use ghs_math::Complex64;
use ghs_operators::{PauliOp, PauliString, PauliSum};
use ghs_statevector::GroupedPauliSum;
use rand::Rng;
use std::f64::consts::PI;

/// Builds the circuit writing `C(x) + offset (mod 2^m)` into the value
/// register. Register layout: system qubits `0..n`, value register
/// `n..n+m` (most-significant value bit first). Costs must be integers for
/// the readout to be exact (the usual Gilliam-et-al. assumption); non-integer
/// weights produce the nearest-phase approximation.
pub fn cost_register_circuit(problem: &HuboProblem, value_bits: usize, offset: f64) -> Circuit {
    let n = problem.num_vars();
    let m = value_bits;
    let total = n + m;
    let modulus = (1u64 << m) as f64;
    let mut c = Circuit::new(total);
    let value_qubits: Vec<usize> = (n..n + m).collect();

    // Phase-estimation style: Hadamards on the value register, then each
    // value bit j (MSB first) controls exp(+2πi·2^{m-1-j}·(C(x)+offset)/2^m).
    for &v in &value_qubits {
        c.h(v);
    }
    for (j, &v) in value_qubits.iter().enumerate() {
        let weight = (1u64 << (m - 1 - j)) as f64;
        // The separator applies exp(−iγH).
        let gamma = -2.0 * PI * weight / modulus;
        // Controlled phase separator: every keyed phase of the separator gets
        // the value qubit appended to its key; the constant offset becomes a
        // plain phase gate on the value qubit.
        let sep = direct_phase_separator(problem, gamma);
        for gate in sep.gates() {
            match gate {
                Gate::KeyedPhase { key, theta } => {
                    let mut key = key.clone();
                    key.push(ControlBit::one(v));
                    c.keyed_phase(key, *theta);
                }
                Gate::GlobalPhase(theta) => {
                    c.p(v, *theta);
                }
                other => c.push(other.clone()),
            }
        }
        if offset != 0.0 {
            c.p(v, -gamma * offset);
        }
    }
    // Inverse QFT on the value register reads the phase out as an integer.
    c.append(&inverse_qft(total, &value_qubits, true));
    c
}

/// Reads the integer value (two's-complement over `m` bits) encoded in the
/// value-register part of a measured basis state.
pub fn decode_value(outcome: usize, num_vars: usize, value_bits: usize) -> i64 {
    let mask = (1usize << value_bits) - 1;
    let raw = outcome & mask;
    let _ = num_vars;
    let signed_limit = 1usize << (value_bits - 1);
    if raw >= signed_limit {
        raw as i64 - (1i64 << value_bits)
    } else {
        raw as i64
    }
}

/// Extracts the system-assignment part of a measured basis state (the system
/// register occupies the most-significant bits).
pub fn decode_assignment(outcome: usize, num_vars: usize, value_bits: usize) -> usize {
    (outcome >> value_bits) & ((1usize << num_vars) - 1)
}

/// One Grover iteration marking assignments whose shifted cost is negative.
fn grover_iteration(problem: &HuboProblem, value_bits: usize, threshold: f64) -> Circuit {
    let n = problem.num_vars();
    let m = value_bits;
    let total = n + m;
    let mut c = Circuit::new(total);

    // Oracle: compute C(x) − threshold into the value register, flip the
    // phase of negative values (sign bit = 1), uncompute.
    let compute = cost_register_circuit(problem, m, -threshold);
    c.append(&compute);
    c.z(n); // sign bit of the value register (its MSB)
    c.append(&compute.dagger());

    // Diffusion on the system register.
    for q in 0..n {
        c.h(q);
        c.x(q);
    }
    c.keyed_z((0..n).map(ControlBit::one).collect());
    for q in 0..n {
        c.x(q);
        c.h(q);
    }
    c
}

/// The full state-preparation circuit of one GAS round: uniform
/// superposition over the system register followed by `iterations` Grover
/// iterations at the given threshold.
pub fn grover_round_circuit(
    problem: &HuboProblem,
    value_bits: usize,
    threshold: f64,
    iterations: usize,
) -> Circuit {
    let n = problem.num_vars();
    let total = n + value_bits;
    let mut circuit = Circuit::new(total);
    for q in 0..n {
        circuit.h(q);
    }
    let iter_circuit = grover_iteration(problem, value_bits, threshold);
    for _ in 0..iterations {
        circuit.append(&iter_circuit);
    }
    circuit
}

/// The cost observable of a GAS register: the problem's diagonal Pauli sum
/// extended by identities over the `value_bits` ancilla qubits, ready for
/// the matrix-free grouped expectation engine.
pub fn gas_cost_observable(problem: &HuboProblem, value_bits: usize) -> GroupedPauliSum {
    let n = problem.num_vars();
    let total = (n + value_bits).max(1);
    let ising = problem.to_ising();
    let terms = ising
        .terms()
        .map(|(vars, w)| {
            let string = if vars.is_empty() {
                PauliString::identity(total)
            } else {
                PauliString::with_op_on(total, PauliOp::Z, vars)
            };
            (Complex64::real(w), string)
        })
        .collect();
    GroupedPauliSum::new(&PauliSum::from_terms(total, terms))
}

/// Expected cost `⟨C⟩` of the state a GAS round prepares, evaluated
/// matrix-free through [`Backend::expectation`] — the diagnostic that
/// quantifies how much amplitude one round moves onto below-threshold
/// assignments (a test pins it under the uniform average).
pub fn grover_expected_cost(
    backend: &dyn Backend,
    problem: &HuboProblem,
    value_bits: usize,
    threshold: f64,
    iterations: usize,
) -> f64 {
    let observable = gas_cost_observable(problem, value_bits);
    grover_expected_cost_with(
        backend,
        problem,
        &observable,
        value_bits,
        threshold,
        iterations,
    )
}

/// [`grover_expected_cost`] against a pre-prepared [`gas_cost_observable`].
/// Sweeping thresholds or iteration counts over one problem re-evaluates the
/// same diagonal observable every time; preparing the grouped form once and
/// passing it here skips the per-call regrouping that [`grover_expected_cost`]
/// pays for convenience.
pub fn grover_expected_cost_with(
    backend: &dyn Backend,
    problem: &HuboProblem,
    observable: &GroupedPauliSum,
    value_bits: usize,
    threshold: f64,
    iterations: usize,
) -> f64 {
    let circuit = grover_round_circuit(problem, value_bits, threshold, iterations);
    debug_assert_eq!(observable.num_qubits(), circuit.num_qubits());
    backend
        .expectation(&InitialState::ZeroState, &circuit, observable)
        .expect("Grover cost circuits run on any dense backend")
}

/// Result of a Grover-Adaptive-Search run.
#[derive(Clone, Debug)]
pub struct GasResult {
    /// Best assignment found.
    pub best_assignment: usize,
    /// Its cost.
    pub best_cost: f64,
    /// Number of Grover iterations applied in total.
    pub total_iterations: usize,
    /// Number of measurement rounds.
    pub rounds: usize,
}

/// Adaptive-threshold Grover search over a HUBO problem (integer weights give
/// exact oracles). `value_bits` must be large enough to hold every shifted
/// cost in two's complement.
pub fn grover_adaptive_search<R: Rng>(
    problem: &HuboProblem,
    value_bits: usize,
    rounds: usize,
    rng: &mut R,
) -> GasResult {
    grover_adaptive_search_with(&FusedStatevector, problem, value_bits, rounds, rng)
}

/// [`grover_adaptive_search`] through an arbitrary execution [`Backend`];
/// each round's single measurement is drawn via the backend's batched shot
/// engine with a seed derived from the caller's generator.
pub fn grover_adaptive_search_with<R: Rng>(
    backend: &dyn Backend,
    problem: &HuboProblem,
    value_bits: usize,
    rounds: usize,
    rng: &mut R,
) -> GasResult {
    let n = problem.num_vars();
    let m = value_bits;
    // Start from a uniformly random assignment.
    let mut best_assignment = rng.gen_range(0..(1usize << n));
    let mut best_cost = problem.evaluate(best_assignment);
    let mut total_iterations = 0;

    for round in 0..rounds {
        // Threshold strictly below the best cost found so far.
        let threshold = best_cost;
        let iterations = 1 + (round % 3); // small rotating iteration count
        let circuit = grover_round_circuit(problem, m, threshold, iterations);
        total_iterations += iterations;

        let sample = backend
            .sample(&InitialState::ZeroState, &circuit, 1, rng.next_u64())
            .expect("Grover round circuits run on any dense backend")[0];
        let assignment = decode_assignment(sample, n, m);
        let cost = problem.evaluate(assignment);
        if cost < best_cost {
            best_cost = cost;
            best_assignment = assignment;
        }
    }
    GasResult {
        best_assignment,
        best_cost,
        total_iterations,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghs_statevector::StateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn integer_problem() -> HuboProblem {
        // Integer-weighted instance on 3 variables with optimum at x = 011
        // (cost −3).
        let mut p = HuboProblem::new(3);
        p.add_term(2.0, &[0]);
        p.add_term(-3.0, &[1, 2]);
        p.add_term(1.0, &[0, 1, 2]);
        p
    }

    #[test]
    fn cost_register_reads_exact_integer_costs() {
        let p = integer_problem();
        let m = 4;
        let circuit = cost_register_circuit(&p, m, 0.0);
        for x in 0..(1usize << 3) {
            // Prepare |x⟩|0⟩ and run the cost evaluation.
            let mut state = StateVector::basis_state(3 + m, x << m);
            state.run_fused(&circuit);
            // The outcome must be deterministic: |x⟩|C(x) mod 16⟩.
            let expected_value = p.evaluate(x);
            let mut found = None;
            for idx in 0..state.dim() {
                if state.probability(idx) > 0.99 {
                    found = Some(idx);
                }
            }
            let outcome = found.expect("deterministic readout");
            assert_eq!(decode_assignment(outcome, 3, m), x);
            assert_eq!(
                decode_value(outcome, 3, m) as f64,
                expected_value,
                "x = {x:03b}"
            );
        }
    }

    #[test]
    fn cost_register_handles_offsets() {
        let p = integer_problem();
        let m = 4;
        let offset = -2.0; // compute C(x) − 2
        let circuit = cost_register_circuit(&p, m, offset);
        let x = 0b111usize; // C = 0 → shifted −2
        let mut state = StateVector::basis_state(3 + m, x << m);
        state.run_fused(&circuit);
        let outcome = (0..state.dim())
            .find(|&i| state.probability(i) > 0.99)
            .unwrap();
        assert_eq!(decode_value(outcome, 3, m), -2);
    }

    #[test]
    fn grover_adaptive_search_finds_optimum() {
        let p = integer_problem();
        let (best, best_cost) = p.brute_force_minimum();
        let mut rng = StdRng::seed_from_u64(17);
        let result = grover_adaptive_search(&p, 4, 8, &mut rng);
        assert_eq!(result.best_assignment, best);
        assert_eq!(result.best_cost, best_cost);
        assert!(result.total_iterations >= result.rounds);
    }

    #[test]
    fn grover_round_lowers_expected_cost_below_uniform() {
        let p = integer_problem();
        let uniform: f64 = (0..(1usize << 3)).map(|x| p.evaluate(x)).sum::<f64>() / 8.0;
        // One prepared observable serves both evaluations below.
        let observable = gas_cost_observable(&p, 4);
        // Threshold 0 marks only the optimum (cost −3); one iteration must
        // amplify it, pulling ⟨C⟩ below the uniform average.
        let amplified = grover_expected_cost_with(&FusedStatevector, &p, &observable, 4, 0.0, 1);
        assert!(
            amplified < uniform - 0.1,
            "expected cost {amplified} not amplified below uniform {uniform}"
        );
        // Zero iterations leave the uniform superposition untouched.
        let untouched = grover_expected_cost_with(&FusedStatevector, &p, &observable, 4, 0.0, 0);
        assert!((untouched - uniform).abs() < 1e-9);
        // The convenience wrapper agrees with the prepared path.
        assert_eq!(
            grover_expected_cost(&FusedStatevector, &p, 4, 0.0, 1),
            amplified
        );
    }

    #[test]
    fn decode_value_two_complement() {
        assert_eq!(decode_value(0b0011, 0, 4), 3);
        assert_eq!(decode_value(0b1111, 0, 4), -1);
        assert_eq!(decode_value(0b1000, 0, 4), -8);
    }
}
