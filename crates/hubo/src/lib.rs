//! # ghs-hubo
//!
//! High-order Unconstrained Binary Optimization application of the
//! gate-efficient Hamiltonian-simulation library (Section V-A of the paper):
//! boolean (`n̂`) and Ising (`Ẑ`) problem formalisms with exact conversions,
//! instance generators (dense, sparse high-order, hypergraph max-cut,
//! knapsack), the direct and usual phase-separation circuits, a QAOA driver,
//! and the crossover / scaling analyses of the paper's evaluation.

#![warn(missing_docs)]

pub mod circuits;
pub mod crossover;
pub mod gas;
pub mod problem;
pub mod qaoa;

pub use circuits::{
    direct_phase_separator, direct_separator_resources, table3_rows, usual_phase_separator,
    usual_separator_resources, GateCensus, SeparatorResources, Table3Row,
};
pub use crossover::{
    crossover_table, measured_crossover, measured_sparse_counts, sparse_scaling_table,
    CrossoverRow, SparseScalingRow,
};
pub use gas::{
    cost_register_circuit, decode_assignment, decode_value, gas_cost_observable,
    grover_adaptive_search, grover_adaptive_search_with, grover_expected_cost,
    grover_expected_cost_with, grover_round_circuit, GasResult,
};
pub use problem::{
    hubo_phase_hamiltonian, knapsack_hubo, random_dense_hubo, random_hypergraph_maxcut,
    random_sparse_hubo, HuboProblem, IsingProblem,
};
pub use qaoa::{
    optimize_qaoa, qaoa_circuit, qaoa_energy, qaoa_energy_grouped, qaoa_energy_with,
    qaoa_parameterized, qaoa_sample, QaoaParameters, QaoaResult, SeparatorStrategy,
};
