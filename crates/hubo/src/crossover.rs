//! Scaling analyses of Section V-A: the two-qubit-gate crossover between the
//! usual and direct strategies for dense order-`n` terms (footnote 2 of the
//! paper) and the exponential gate reduction for sparse high-order problems.

use crate::problem::HuboProblem;
use ghs_circuit::costmodel::{
    cnp_two_qubit_count_with_ancilla, rzn_two_qubit_count, switched_formalism_term_count,
    usual_dense_two_qubit_count,
};

/// One row of the dense-term crossover analysis (E06).
#[derive(Clone, Copy, Debug)]
pub struct CrossoverRow {
    /// Term order `n`.
    pub order: usize,
    /// Two-qubit gates of the usual strategy for a single dense order-`n`
    /// boolean term switched to the Pauli-`Z` formalism:
    /// `Σ_h 2(h−1)·C(n,h)`.
    pub usual_two_qubit: u128,
    /// Two-qubit gates of the direct strategy's single `CⁿP` under the
    /// paper's ancilla-assisted model (`192n − 904`, valid for n > 5).
    pub direct_two_qubit: Option<usize>,
    /// Number of Pauli fragments the boolean term expands into.
    pub usual_fragments: u128,
    /// Whether the direct strategy is strictly cheaper at this order.
    pub direct_wins: bool,
}

/// Builds the crossover table for orders `6..=max_order` (the validity
/// domain of the paper's `CⁿP` formula).
pub fn crossover_table(max_order: usize) -> Vec<CrossoverRow> {
    (6..=max_order)
        .map(|order| {
            let usual = usual_dense_two_qubit_count(order);
            let direct = cnp_two_qubit_count_with_ancilla(order);
            CrossoverRow {
                order,
                usual_two_qubit: usual,
                direct_two_qubit: direct,
                usual_fragments: switched_formalism_term_count(order),
                direct_wins: direct.map(|d| (d as u128) < usual).unwrap_or(false),
            }
        })
        .collect()
}

/// The first order at which the direct strategy's model beats the usual one.
pub fn measured_crossover(max_order: usize) -> Option<usize> {
    crossover_table(max_order)
        .iter()
        .find(|r| r.direct_wins)
        .map(|r| r.order)
}

/// One row of the sparse high-order scaling analysis (E07).
#[derive(Clone, Copy, Debug)]
pub struct SparseScalingRow {
    /// Order of every monomial in the instance.
    pub order: usize,
    /// Number of monomials.
    pub num_terms: usize,
    /// Direct strategy: parametrised gates (one keyed phase per monomial).
    pub direct_rotations: usize,
    /// Usual strategy: parametrised gates (one per Pauli fragment).
    pub usual_rotations: u128,
    /// Usual strategy: two-qubit gates of the fragment ladders.
    pub usual_two_qubit: u128,
}

/// Analytic sparse-scaling table: an instance with `num_terms` monomials of
/// exactly `order` variables each (fragment counts assume no cross-monomial
/// cancellation, which holds for disjoint or random supports with
/// overwhelming probability).
pub fn sparse_scaling_table(orders: &[usize], num_terms: usize) -> Vec<SparseScalingRow> {
    orders
        .iter()
        .map(|&order| SparseScalingRow {
            order,
            num_terms,
            direct_rotations: num_terms,
            usual_rotations: num_terms as u128 * switched_formalism_term_count(order),
            usual_two_qubit: num_terms as u128 * usual_dense_two_qubit_count(order),
        })
        .collect()
}

/// Measured (circuit-level) counts for an actual sparse instance — used to
/// cross-check the analytic table at small orders.
pub fn measured_sparse_counts(problem: &HuboProblem) -> (usize, usize, usize) {
    let direct = crate::circuits::direct_separator_resources(problem, 0.5);
    let usual = crate::circuits::usual_separator_resources(problem, 0.5);
    (direct.rotations, usual.rotations, usual.two_qubit)
}

/// Two-qubit count of the usual strategy for one dense order-`n` term,
/// re-exported convenience wrapper around the cost model (used by the
/// experiments binary).
pub fn usual_dense_cost(order: usize) -> u128 {
    usual_dense_two_qubit_count(order)
}

/// Two-qubit count of a Pauli-`Z` rotation of the given weight (cost-model
/// re-export).
pub fn rzn_cost(weight: usize) -> usize {
    rzn_two_qubit_count(weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn crossover_table_is_monotone_in_direct_wins() {
        let table = crossover_table(16);
        // Once the direct strategy wins it keeps winning (linear vs
        // exponential growth).
        let first_win = table
            .iter()
            .position(|r| r.direct_wins)
            .expect("a crossover exists");
        for row in &table[first_win..] {
            assert!(row.direct_wins);
        }
        // The gap grows without bound.
        let last = table.last().unwrap();
        assert!(last.usual_two_qubit > 100 * last.direct_two_qubit.unwrap() as u128);
    }

    #[test]
    fn measured_crossover_matches_costmodel() {
        assert_eq!(
            measured_crossover(20),
            ghs_circuit::costmodel::direct_vs_usual_crossover_order(20)
        );
    }

    #[test]
    fn sparse_scaling_is_exponential_for_usual_only() {
        let rows = sparse_scaling_table(&[4, 8, 12, 16], 3);
        for w in rows.windows(2) {
            // Direct stays constant, usual grows by ~2^Δorder.
            assert_eq!(w[0].direct_rotations, w[1].direct_rotations);
            assert!(w[1].usual_rotations > 10 * w[0].usual_rotations);
        }
    }

    #[test]
    fn analytic_and_measured_counts_agree_at_small_order() {
        let mut rng = StdRng::seed_from_u64(6);
        // Disjoint supports so no fragments merge: 2 monomials of order 3 on
        // 6 variables.
        let mut p = HuboProblem::new(6);
        p.add_term(rng.gen_range(0.5..1.5), &[0, 1, 2]);
        p.add_term(rng.gen_range(0.5..1.5), &[3, 4, 5]);
        let (direct_rot, usual_rot, usual_2q) = measured_sparse_counts(&p);
        let analytic = sparse_scaling_table(&[3], 2)[0];
        assert_eq!(direct_rot as u128, analytic.direct_rotations as u128);
        assert_eq!(usual_rot as u128, analytic.usual_rotations);
        assert_eq!(usual_2q as u128, analytic.usual_two_qubit);
    }
}
