//! High-order Unconstrained Binary Optimization problems in the boolean
//! (`n̂`, Eq. 14) formalism, and instance generators for the workloads the
//! paper's Section V-A discusses (dense low-order, sparse high-order,
//! hypergraph max-cut, knapsack).

use ghs_math::Complex64;
use ghs_operators::{
    HermitianTerm, PauliOp, PauliString, PauliSum, ScbHamiltonian, ScbOp, ScbString,
};
use rand::Rng;
use std::collections::BTreeMap;

/// A HUBO cost function `C(x) = Σ_I q_I ∏_{i∈I} x_i` over boolean variables
/// `x_i ∈ {0, 1}` (Eq. 14 of the paper; the empty set is a constant offset).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HuboProblem {
    num_vars: usize,
    terms: BTreeMap<Vec<usize>, f64>,
}

impl HuboProblem {
    /// Empty problem on `num_vars` boolean variables.
    pub fn new(num_vars: usize) -> Self {
        Self {
            num_vars,
            terms: BTreeMap::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Adds `weight · ∏_{i ∈ vars} x_i`, merging duplicate monomials. The
    /// variable list is sorted and deduplicated (x² = x for booleans).
    pub fn add_term(&mut self, weight: f64, vars: &[usize]) {
        for &v in vars {
            assert!(v < self.num_vars, "variable index out of range");
        }
        let mut key: Vec<usize> = vars.to_vec();
        key.sort_unstable();
        key.dedup();
        *self.terms.entry(key).or_insert(0.0) += weight;
    }

    /// Iterates `(monomial, weight)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&[usize], f64)> + '_ {
        self.terms.iter().map(|(k, &w)| (k.as_slice(), w))
    }

    /// Number of monomials (including a possible constant).
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Highest monomial degree (the HUBO order).
    pub fn order(&self) -> usize {
        self.terms.keys().map(|k| k.len()).max().unwrap_or(0)
    }

    /// Evaluates the cost of a boolean assignment given as a bit index
    /// (variable 0 = most significant bit, matching the qubit convention).
    pub fn evaluate(&self, assignment: usize) -> f64 {
        self.terms
            .iter()
            .map(|(vars, w)| {
                let all_set = vars
                    .iter()
                    .all(|&v| ghs_math::bits::qubit_bit(assignment, v, self.num_vars) == 1);
                if all_set {
                    *w
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Exhaustive minimisation (small instances): returns `(best_assignment,
    /// best_cost)`.
    pub fn brute_force_minimum(&self) -> (usize, f64) {
        (0..(1usize << self.num_vars))
            .map(|x| (x, self.evaluate(x)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("at least one assignment")
    }

    /// The problem Hamiltonian in the boolean formalism: one bare SCB term
    /// `q_I ∏ n̂_i` per monomial (diagonal, all terms commute).
    pub fn to_scb_hamiltonian(&self) -> ScbHamiltonian {
        let mut h = ScbHamiltonian::new(self.num_vars.max(1));
        for (vars, w) in &self.terms {
            let string = if vars.is_empty() {
                ScbString::identity(self.num_vars.max(1))
            } else {
                ScbString::with_op_on(self.num_vars, ScbOp::N, vars)
            };
            h.push(HermitianTerm::bare(*w, string));
        }
        h
    }

    /// The cost observable as a diagonal Pauli sum (via the Ising
    /// formalism), ready for the matrix-free grouped expectation engine —
    /// `⟨ψ|C|ψ⟩ = Σ_x |ψ_x|²·C(x)` evaluated in one probability sweep.
    pub fn to_pauli_sum(&self) -> PauliSum {
        self.to_ising().to_pauli_sum()
    }

    /// Converts to the Ising / Pauli-`Z` formalism (Eq. 13) by expanding
    /// `n̂ = (I − Ẑ)/2` monomial by monomial — the `2^k` blow-up of sparse
    /// high-order problems discussed in Section V-A.
    pub fn to_ising(&self) -> IsingProblem {
        let mut ising = IsingProblem::new(self.num_vars);
        for (vars, w) in &self.terms {
            let k = vars.len();
            let scale = w / (1usize << k) as f64;
            // ∏ (I − Z_i)/2 = 2^{-k} Σ_{S⊆vars} (−1)^{|S|} Z_S.
            for mask in 0..(1usize << k) {
                let subset: Vec<usize> = (0..k)
                    .filter(|j| mask >> j & 1 == 1)
                    .map(|j| vars[j])
                    .collect();
                let sign = if subset.len().is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
                ising.add_term(sign * scale, &subset);
            }
        }
        ising.prune(1e-12);
        ising
    }
}

/// A cost function in the Ising / Pauli-`Z` formalism:
/// `C(z) = Σ_I q_I ∏_{i∈I} z_i` with `z_i ∈ {+1, −1}` (Eq. 13).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IsingProblem {
    num_vars: usize,
    terms: BTreeMap<Vec<usize>, f64>,
}

impl IsingProblem {
    /// Empty problem.
    pub fn new(num_vars: usize) -> Self {
        Self {
            num_vars,
            terms: BTreeMap::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Adds `weight · ∏ z_i`.
    pub fn add_term(&mut self, weight: f64, vars: &[usize]) {
        for &v in vars {
            assert!(v < self.num_vars, "variable index out of range");
        }
        let mut key: Vec<usize> = vars.to_vec();
        key.sort_unstable();
        // z² = 1: pairs cancel.
        let mut reduced = Vec::with_capacity(key.len());
        let mut i = 0;
        while i < key.len() {
            if i + 1 < key.len() && key[i] == key[i + 1] {
                i += 2;
            } else {
                reduced.push(key[i]);
                i += 1;
            }
        }
        *self.terms.entry(reduced).or_insert(0.0) += weight;
    }

    /// Iterates `(monomial, weight)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&[usize], f64)> + '_ {
        self.terms.iter().map(|(k, &w)| (k.as_slice(), w))
    }

    /// Number of monomials.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Highest monomial degree.
    pub fn order(&self) -> usize {
        self.terms.keys().map(|k| k.len()).max().unwrap_or(0)
    }

    /// Removes monomials with |weight| ≤ tol.
    pub fn prune(&mut self, tol: f64) {
        self.terms.retain(|_, w| w.abs() > tol);
    }

    /// Evaluates the cost of an assignment given as a bit index with the
    /// convention `bit 0 ↔ z = +1`, `bit 1 ↔ z = −1` (so that the Ising and
    /// boolean evaluations agree through `x = (1 − z)/2`).
    pub fn evaluate(&self, assignment: usize) -> f64 {
        self.terms
            .iter()
            .map(|(vars, w)| {
                let sign: f64 = vars
                    .iter()
                    .map(|&v| {
                        if ghs_math::bits::qubit_bit(assignment, v, self.num_vars) == 1 {
                            -1.0
                        } else {
                            1.0
                        }
                    })
                    .product();
                w * sign
            })
            .sum()
    }

    /// The problem Hamiltonian in the Pauli-`Z` formalism: one bare SCB term
    /// `q_I ∏ Ẑ_i` per monomial.
    pub fn to_scb_hamiltonian(&self) -> ScbHamiltonian {
        let mut h = ScbHamiltonian::new(self.num_vars.max(1));
        for (vars, w) in &self.terms {
            let string = if vars.is_empty() {
                ScbString::identity(self.num_vars.max(1))
            } else {
                ScbString::with_op_on(self.num_vars, ScbOp::Z, vars)
            };
            h.push(HermitianTerm::bare(*w, string));
        }
        h
    }

    /// The cost observable as a diagonal Pauli sum: one `Z`-string per
    /// monomial (the constant becomes the identity string). The register has
    /// at least one qubit so the observable is well-formed for empty
    /// problems.
    pub fn to_pauli_sum(&self) -> PauliSum {
        let n = self.num_vars.max(1);
        let terms = self
            .terms
            .iter()
            .map(|(vars, &w)| {
                let string = if vars.is_empty() {
                    PauliString::identity(n)
                } else {
                    PauliString::with_op_on(n, PauliOp::Z, vars)
                };
                (Complex64::real(w), string)
            })
            .collect();
        PauliSum::from_terms(n, terms)
    }

    /// Converts to the boolean formalism by substituting `Z = I − 2n̂`.
    pub fn to_hubo(&self) -> HuboProblem {
        let mut hubo = HuboProblem::new(self.num_vars);
        for (vars, w) in &self.terms {
            let k = vars.len();
            // ∏ (1 − 2n_i) = Σ_{S⊆vars} (−2)^{|S|} ∏_{i∈S} n_i.
            for mask in 0..(1usize << k) {
                let subset: Vec<usize> = (0..k)
                    .filter(|j| mask >> j & 1 == 1)
                    .map(|j| vars[j])
                    .collect();
                let coeff = w * (-2.0f64).powi(subset.len() as i32);
                hubo.add_term(coeff, &subset);
            }
        }
        hubo.terms.retain(|_, w| w.abs() > 1e-12);
        hubo
    }
}

// ---------------------------------------------------------------------------
// Instance generators
// ---------------------------------------------------------------------------

/// Dense problem of maximum order `order`: every monomial of degree 1..=order
/// gets a random weight.
pub fn random_dense_hubo<R: Rng>(num_vars: usize, order: usize, rng: &mut R) -> HuboProblem {
    let mut p = HuboProblem::new(num_vars);
    let mut emit = |vars: &[usize], rng: &mut R| {
        p.add_term(rng.gen_range(-1.0..1.0), vars);
    };
    // Enumerate all non-empty subsets of size ≤ order.
    for mask in 1usize..(1 << num_vars) {
        let vars: Vec<usize> = (0..num_vars).filter(|i| mask >> i & 1 == 1).collect();
        if vars.len() <= order {
            emit(&vars, rng);
        }
    }
    p
}

/// Sparse high-order problem: `num_terms` random monomials of exactly
/// `order` variables (the regime where the paper's direct strategy wins
/// exponentially).
pub fn random_sparse_hubo<R: Rng>(
    num_vars: usize,
    order: usize,
    num_terms: usize,
    rng: &mut R,
) -> HuboProblem {
    assert!(order <= num_vars);
    let mut p = HuboProblem::new(num_vars);
    for _ in 0..num_terms {
        let mut vars: Vec<usize> = (0..num_vars).collect();
        // Partial Fisher–Yates to pick `order` distinct variables.
        for i in 0..order {
            let j = rng.gen_range(i..num_vars);
            vars.swap(i, j);
        }
        p.add_term(rng.gen_range(0.5..1.5), &vars[..order]);
    }
    p
}

/// Hypergraph max-cut (the paper's motivating example of Eq. 13): for each
/// hyperedge `e`, the cost term rewards assignments that are not monochrome.
/// We use the standard penalty `∏_{i∈e} z_i` on the Ising side, generated
/// here directly in the Ising formalism.
pub fn random_hypergraph_maxcut<R: Rng>(
    num_vars: usize,
    num_edges: usize,
    edge_order: usize,
    rng: &mut R,
) -> IsingProblem {
    assert!(edge_order <= num_vars);
    let mut p = IsingProblem::new(num_vars);
    for _ in 0..num_edges {
        let mut vars: Vec<usize> = (0..num_vars).collect();
        for i in 0..edge_order {
            let j = rng.gen_range(i..num_vars);
            vars.swap(i, j);
        }
        p.add_term(1.0, &vars[..edge_order]);
    }
    p
}

/// 0/1 knapsack as a HUBO with a quadratic capacity penalty over binary
/// slack variables: minimise `−Σ v_i x_i + penalty·(Σ w_i x_i + Σ 2^j s_j −
/// capacity)²`.
pub fn knapsack_hubo(values: &[f64], weights: &[u32], capacity: u32, penalty: f64) -> HuboProblem {
    assert_eq!(values.len(), weights.len());
    let n_items = values.len();
    // Slack register big enough to express any load up to the capacity.
    let slack_bits = if capacity == 0 {
        0
    } else {
        (32 - capacity.leading_zeros()) as usize
    };
    let num_vars = n_items + slack_bits;
    let mut p = HuboProblem::new(num_vars);
    // Objective: maximise value → minimise −value.
    for (i, &v) in values.iter().enumerate() {
        p.add_term(-v, &[i]);
    }
    // Penalty (Σ w_i x_i + Σ 2^j s_j − C)²: expand into monomials of degree
    // ≤ 2 (boolean squares collapse).
    let mut linear: Vec<(usize, f64)> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| (i, w as f64))
        .collect();
    for j in 0..slack_bits {
        linear.push((n_items + j, (1u32 << j) as f64));
    }
    let c = capacity as f64;
    // (Σ a_i x_i − C)² = Σ_i a_i² x_i + 2 Σ_{i<j} a_i a_j x_i x_j − 2C Σ a_i x_i + C².
    for &(i, a) in &linear {
        p.add_term(penalty * (a * a - 2.0 * c * a), &[i]);
    }
    for idx1 in 0..linear.len() {
        for idx2 in (idx1 + 1)..linear.len() {
            let (i, a) = linear[idx1];
            let (j, b) = linear[idx2];
            p.add_term(penalty * 2.0 * a * b, &[i, j]);
        }
    }
    p.add_term(penalty * c * c, &[]);
    p
}

/// Convenience: the problem Hamiltonian of a HUBO with an imaginary-free
/// time parameter; re-exported for the QAOA driver.
pub fn hubo_phase_hamiltonian(problem: &HuboProblem) -> ScbHamiltonian {
    let _ = Complex64::ONE;
    problem.to_scb_hamiltonian()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghs_math::DEFAULT_TOL;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn evaluation_and_brute_force() {
        let mut p = HuboProblem::new(3);
        p.add_term(2.0, &[0]);
        p.add_term(-3.0, &[1, 2]);
        p.add_term(1.0, &[0, 1, 2]);
        // x = 011 → cost = −3; x = 111 → 2 − 3 + 1 = 0.
        assert_eq!(p.evaluate(0b011), -3.0);
        assert_eq!(p.evaluate(0b111), 0.0);
        let (best, cost) = p.brute_force_minimum();
        assert_eq!(best, 0b011);
        assert_eq!(cost, -3.0);
    }

    #[test]
    fn duplicate_variables_collapse() {
        let mut p = HuboProblem::new(2);
        p.add_term(1.0, &[0, 0, 1]);
        assert_eq!(p.order(), 2);
        assert_eq!(p.evaluate(0b11), 1.0);
    }

    #[test]
    fn hubo_ising_round_trip_preserves_costs() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = random_sparse_hubo(5, 3, 4, &mut rng);
        let ising = p.to_ising();
        let back = ising.to_hubo();
        for x in 0..(1usize << 5) {
            assert!(
                (p.evaluate(x) - ising.evaluate(x)).abs() < DEFAULT_TOL,
                "cost mismatch at {x}"
            );
            assert!((p.evaluate(x) - back.evaluate(x)).abs() < DEFAULT_TOL);
        }
    }

    #[test]
    fn formalism_switch_blows_up_sparse_terms() {
        // A single order-k boolean monomial becomes 2^k Ising monomials
        // (including the constant), per Section V-A.
        let mut p = HuboProblem::new(6);
        p.add_term(1.0, &[0, 1, 2, 3, 4, 5]);
        let ising = p.to_ising();
        assert_eq!(ising.num_terms(), 1 << 6);
    }

    #[test]
    fn pauli_sum_diagonal_matches_cost() {
        let mut rng = StdRng::seed_from_u64(27);
        let p = random_sparse_hubo(4, 3, 5, &mut rng);
        let sum = p.to_pauli_sum();
        assert!(sum.terms().iter().all(|(_, s)| s.is_diagonal()));
        let m = sum.matrix();
        for x in 0..(1usize << 4) {
            assert!((m[(x, x)].re - p.evaluate(x)).abs() < DEFAULT_TOL);
        }
        // The Ising-side conversion builds the same operator.
        assert!(p.to_ising().to_pauli_sum().matrix().approx_eq(&m, 1e-10));
    }

    #[test]
    fn hamiltonian_diagonal_matches_cost() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = random_sparse_hubo(4, 2, 5, &mut rng);
        let h = p.to_scb_hamiltonian().matrix();
        for x in 0..(1usize << 4) {
            assert!((h[(x, x)].re - p.evaluate(x)).abs() < DEFAULT_TOL);
            assert!(h[(x, x)].im.abs() < DEFAULT_TOL);
        }
        // Ising Hamiltonian has the same diagonal.
        let hi = p.to_ising().to_scb_hamiltonian().matrix();
        for x in 0..(1usize << 4) {
            assert!((hi[(x, x)].re - p.evaluate(x)).abs() < DEFAULT_TOL);
        }
    }

    #[test]
    fn dense_generator_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = random_dense_hubo(4, 2, &mut rng);
        // C(4,1) + C(4,2) = 4 + 6 monomials.
        assert_eq!(p.num_terms(), 10);
        assert_eq!(p.order(), 2);
    }

    #[test]
    fn sparse_generator_has_requested_order() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = random_sparse_hubo(10, 7, 3, &mut rng);
        assert_eq!(p.order(), 7);
        assert!(p.num_terms() <= 3);
    }

    #[test]
    fn maxcut_generator_is_ising() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = random_hypergraph_maxcut(6, 5, 3, &mut rng);
        assert!(p.num_terms() <= 5);
        assert_eq!(p.order(), 3);
    }

    #[test]
    fn knapsack_optimum_respects_capacity() {
        // Items: values (6, 5, 4), weights (3, 2, 2), capacity 4 → best is
        // items {1, 2} with value 9, weight 4.
        let p = knapsack_hubo(&[6.0, 5.0, 4.0], &[3, 2, 2], 4, 10.0);
        let (best, _) = p.brute_force_minimum();
        let n_items = 3;
        let picked: Vec<usize> = (0..n_items)
            .filter(|&i| ghs_math::bits::qubit_bit(best, i, p.num_vars()) == 1)
            .collect();
        assert_eq!(picked, vec![1, 2]);
        let total_weight: u32 = picked.iter().map(|&i| [3u32, 2, 2][i]).sum();
        assert!(total_weight <= 4);
    }
}
