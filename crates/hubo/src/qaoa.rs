//! A QAOA driver over the HUBO phase separators, exercising the paper's
//! claim that the direct construction plugs straight into NISQ variational
//! routines (Section I and §VI-B).

use crate::circuits::{direct_phase_separator, usual_phase_separator};
use crate::problem::HuboProblem;
use ghs_circuit::{Circuit, LadderStyle, ParameterizedCircuit};
use ghs_core::backend::{Backend, FusedStatevector, InitialState};
use ghs_core::optimize::{minimize_adam, AdamOptions};
use ghs_statevector::{GroupedPauliSum, StateVector};
use rand::Rng;

/// Which phase-separator construction the QAOA circuit uses (both implement
/// the same unitary; they differ in gate counts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeparatorStrategy {
    /// Multi-controlled phases on the boolean formalism.
    Direct,
    /// Pauli-`Z` string rotations on the Ising formalism.
    Usual,
}

/// QAOA parameters: one `(γ, β)` pair per layer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QaoaParameters {
    /// Phase-separator angles.
    pub gammas: Vec<f64>,
    /// Mixer angles.
    pub betas: Vec<f64>,
}

impl QaoaParameters {
    /// All-zero parameters for `p` layers.
    pub fn zeros(p: usize) -> Self {
        Self {
            gammas: vec![0.0; p],
            betas: vec![0.0; p],
        }
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.gammas.len()
    }

    /// Flat parameter-vector layout used by [`qaoa_parameterized`]:
    /// `[γ_0 … γ_{p−1}, β_0 … β_{p−1}]`.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut v = self.gammas.clone();
        v.extend_from_slice(&self.betas);
        v
    }

    /// Inverse of [`QaoaParameters::to_vec`].
    ///
    /// # Panics
    /// Panics when `v.len()` is odd.
    pub fn from_vec(v: &[f64]) -> Self {
        assert_eq!(v.len() % 2, 0, "flat QAOA vector must be [γ…, β…]");
        let p = v.len() / 2;
        Self {
            gammas: v[..p].to_vec(),
            betas: v[p..].to_vec(),
        }
    }
}

/// Builds the QAOA circuit `∏_l [mixer(β_l)·separator(γ_l)] · H^{⊗n}`.
pub fn qaoa_circuit(
    problem: &HuboProblem,
    params: &QaoaParameters,
    strategy: SeparatorStrategy,
) -> Circuit {
    assert_eq!(
        params.gammas.len(),
        params.betas.len(),
        "layer count mismatch"
    );
    let n = problem.num_vars().max(1);
    let mut c = Circuit::new(n);
    for q in 0..problem.num_vars() {
        c.h(q);
    }
    let ising = problem.to_ising();
    for (gamma, beta) in params.gammas.iter().zip(params.betas.iter()) {
        match strategy {
            SeparatorStrategy::Direct => c.append(&direct_phase_separator(problem, *gamma)),
            SeparatorStrategy::Usual => {
                c.append(&usual_phase_separator(&ising, *gamma, LadderStyle::Linear))
            }
        }
        for q in 0..problem.num_vars() {
            c.rx(q, 2.0 * beta);
        }
    }
    c
}

/// Builds the QAOA ansatz as a **parameterized circuit** over the flat
/// `[γ…, β…]` vector (see [`QaoaParameters::to_vec`]): every separator
/// phase is bound to its layer's `γ` and every mixer rotation to its
/// layer's `β` — both constructions are affine in the angles, so the
/// template is derived automatically from [`qaoa_circuit`]. This is the
/// object the adjoint gradient engine differentiates in
/// [`optimize_qaoa`]'s inner loop.
pub fn qaoa_parameterized(
    problem: &HuboProblem,
    layers: usize,
    strategy: SeparatorStrategy,
) -> ParameterizedCircuit {
    ParameterizedCircuit::from_linear_template(2 * layers, |v| {
        qaoa_circuit(problem, &QaoaParameters::from_vec(v), strategy)
    })
}

/// Expected cost of the QAOA state: `⟨ψ|C|ψ⟩` (through the default fused
/// backend; see [`qaoa_energy_with`]).
pub fn qaoa_energy(
    problem: &HuboProblem,
    params: &QaoaParameters,
    strategy: SeparatorStrategy,
) -> f64 {
    qaoa_energy_with(&FusedStatevector, problem, params, strategy)
}

/// Expected cost of the QAOA state through an arbitrary execution
/// [`Backend`], evaluated matrix-free as the grouped expectation of the
/// diagonal cost observable ([`HuboProblem::to_pauli_sum`]). With a noisy
/// trajectory backend this is the ensemble-averaged cost under the noise
/// channel. Builds the observable on every call; optimisation loops should
/// prepare it once and use [`qaoa_energy_grouped`].
pub fn qaoa_energy_with(
    backend: &dyn Backend,
    problem: &HuboProblem,
    params: &QaoaParameters,
    strategy: SeparatorStrategy,
) -> f64 {
    let observable = GroupedPauliSum::new(&problem.to_pauli_sum());
    qaoa_energy_grouped(backend, problem, &observable, params, strategy)
}

/// Expected cost of the QAOA state against a **prepared** cost observable —
/// the hot path of [`optimize_qaoa`]'s inner loop.
pub fn qaoa_energy_grouped(
    backend: &dyn Backend,
    problem: &HuboProblem,
    observable: &GroupedPauliSum,
    params: &QaoaParameters,
    strategy: SeparatorStrategy,
) -> f64 {
    let circuit = qaoa_circuit(problem, params, strategy);
    backend
        .expectation(&InitialState::ZeroState, &circuit, observable)
        .expect("QAOA cost circuits run on any dense backend")
}

/// Draws `shots` assignments from the QAOA state through a backend's
/// batched shot engine (`O(2^n + shots)`; bit-reproducible per seed).
pub fn qaoa_sample(
    backend: &dyn Backend,
    problem: &HuboProblem,
    params: &QaoaParameters,
    strategy: SeparatorStrategy,
    shots: usize,
    seed: u64,
) -> Vec<usize> {
    let circuit = qaoa_circuit(problem, params, strategy);
    backend
        .sample(&InitialState::ZeroState, &circuit, shots, seed)
        .expect("QAOA circuits run on any dense backend")
}

/// Result of a QAOA optimisation run.
#[derive(Clone, Debug)]
pub struct QaoaResult {
    /// Optimised parameters.
    pub params: QaoaParameters,
    /// Final expected cost.
    pub energy: f64,
    /// Probability of sampling an optimal assignment (by brute force).
    pub optimum_probability: f64,
    /// The optimal cost found by brute force (reference).
    pub optimal_cost: f64,
}

/// Optimises QAOA angles by gradient descent: random restarts, each driven
/// by Adam over **adjoint-mode** gradients of the prepared cost observable
/// (every `γ`/`β` component from one forward + one reverse sweep, instead
/// of `O(P)` energy evaluations per step — the same engine behind
/// [`Backend::expectation_gradient`], called through
/// [`ghs_statevector::adjoint_gradient_into`] so one scratch circuit is
/// rebound in place across every iteration of the run).
pub fn optimize_qaoa<R: Rng>(
    problem: &HuboProblem,
    layers: usize,
    strategy: SeparatorStrategy,
    restarts: usize,
    iterations: usize,
    rng: &mut R,
) -> QaoaResult {
    let mut best_vec = QaoaParameters::zeros(layers).to_vec();
    let mut best_energy = f64::INFINITY;
    // One observable preparation and one ansatz template serve every
    // evaluation of the run.
    let observable = GroupedPauliSum::new(&problem.to_pauli_sum());
    let ansatz = qaoa_parameterized(problem, layers, strategy);
    // One scratch circuit serves every evaluation: the template is cloned
    // into it once, after which rebinding only overwrites bound angles.
    let mut scratch = Circuit::new(0);
    let zero = StateVector::zero_state(ansatz.num_qubits());
    let adam = AdamOptions {
        learning_rate: 0.08,
        max_iterations: iterations.max(1),
        gradient_tolerance: 1e-6,
        ..AdamOptions::default()
    };

    for _ in 0..restarts.max(1) {
        let x0: Vec<f64> = (0..2 * layers).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let result = minimize_adam(
            |v: &[f64]| {
                let r = ghs_statevector::adjoint_gradient_into(
                    &zero,
                    &ansatz,
                    v,
                    &observable,
                    &mut scratch,
                );
                (r.energy, r.gradient)
            },
            &x0,
            &adam,
        );
        if result.value < best_energy {
            best_energy = result.value;
            best_vec = result.params;
        }
    }
    let best_params = QaoaParameters::from_vec(&best_vec);

    // Probability of hitting a brute-force optimum.
    let (_, optimal_cost) = problem.brute_force_minimum();
    let circuit = qaoa_circuit(problem, &best_params, strategy);
    let probs = FusedStatevector
        .probabilities(&InitialState::ZeroState, &circuit)
        .expect("QAOA circuits run on the fused backend");
    let optimum_probability = probs
        .iter()
        .enumerate()
        .filter(|(x, _)| (problem.evaluate(*x) - optimal_cost).abs() < 1e-9)
        .map(|(_, p)| p)
        .sum();

    QaoaResult {
        params: best_params,
        energy: best_energy,
        optimum_probability,
        optimal_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_problem() -> HuboProblem {
        // A frustrated 4-variable instance.
        let mut p = HuboProblem::new(4);
        p.add_term(1.0, &[0, 1]);
        p.add_term(1.0, &[1, 2]);
        p.add_term(1.0, &[2, 3]);
        p.add_term(-2.0, &[0, 3]);
        p.add_term(-1.0, &[1]);
        p
    }

    #[test]
    fn both_strategies_give_identical_energies() {
        let p = small_problem();
        let params = QaoaParameters {
            gammas: vec![0.7, -0.3],
            betas: vec![0.4, 0.2],
        };
        let e_direct = qaoa_energy(&p, &params, SeparatorStrategy::Direct);
        let e_usual = qaoa_energy(&p, &params, SeparatorStrategy::Usual);
        assert!((e_direct - e_usual).abs() < 1e-9);
    }

    #[test]
    fn grouped_expectation_matches_probability_weighted_cost() {
        // The matrix-free observable path must equal the old
        // probability-sweep definition Σ_x P(x)·C(x).
        let p = small_problem();
        let params = QaoaParameters {
            gammas: vec![0.6, -0.2],
            betas: vec![0.3, 0.5],
        };
        let circuit = qaoa_circuit(&p, &params, SeparatorStrategy::Direct);
        let classical: f64 = FusedStatevector
            .probabilities(&InitialState::ZeroState, &circuit)
            .unwrap()
            .iter()
            .enumerate()
            .map(|(x, prob)| prob * p.evaluate(x))
            .sum();
        let e = qaoa_energy(&p, &params, SeparatorStrategy::Direct);
        assert!((e - classical).abs() < 1e-12, "{e} vs {classical}");
    }

    #[test]
    fn zero_parameters_give_uniform_average_cost() {
        let p = small_problem();
        let params = QaoaParameters::zeros(1);
        let e = qaoa_energy(&p, &params, SeparatorStrategy::Direct);
        let avg: f64 = (0..(1usize << 4)).map(|x| p.evaluate(x)).sum::<f64>() / 16.0;
        assert!((e - avg).abs() < 1e-9);
    }

    #[test]
    fn backend_energies_agree_and_sampling_is_seeded() {
        use ghs_core::backend::{PauliNoise, ReferenceStatevector};
        let p = small_problem();
        let params = QaoaParameters {
            gammas: vec![0.5],
            betas: vec![0.3],
        };
        let e_fused = qaoa_energy_with(&FusedStatevector, &p, &params, SeparatorStrategy::Direct);
        let e_ref = qaoa_energy_with(
            &ReferenceStatevector,
            &p,
            &params,
            SeparatorStrategy::Direct,
        );
        assert!((e_fused - e_ref).abs() < 1e-12);
        // A zero-strength noise backend reproduces the noiseless energy.
        let quiet = PauliNoise::depolarizing(0.0, 3, 1);
        let e_quiet = qaoa_energy_with(&quiet, &p, &params, SeparatorStrategy::Direct);
        assert!((e_quiet - e_fused).abs() < 1e-12);
        // Seeded batched sampling is reproducible and in-range.
        let shots = qaoa_sample(
            &FusedStatevector,
            &p,
            &params,
            SeparatorStrategy::Direct,
            2048,
            3,
        );
        assert_eq!(
            shots,
            qaoa_sample(
                &FusedStatevector,
                &p,
                &params,
                SeparatorStrategy::Direct,
                2048,
                3
            )
        );
        assert!(shots.iter().all(|&x| x < 16));
    }

    #[test]
    fn optimisation_improves_over_uniform() {
        let p = small_problem();
        let mut rng = StdRng::seed_from_u64(23);
        let uniform = qaoa_energy(&p, &QaoaParameters::zeros(1), SeparatorStrategy::Direct);
        let result = optimize_qaoa(&p, 2, SeparatorStrategy::Direct, 2, 80, &mut rng);
        assert!(
            result.energy < uniform - 0.1,
            "QAOA failed to improve: {} vs {uniform}",
            result.energy
        );
        assert!(result.optimum_probability > 1.0 / 16.0);
        assert!(result.energy >= result.optimal_cost - 1e-9);
    }

    #[test]
    fn parameterized_ansatz_matches_direct_construction() {
        let p = small_problem();
        for strategy in [SeparatorStrategy::Direct, SeparatorStrategy::Usual] {
            let ansatz = qaoa_parameterized(&p, 2, strategy);
            assert_eq!(ansatz.num_params(), 4);
            for params in [
                QaoaParameters::zeros(2),
                QaoaParameters {
                    gammas: vec![0.7, -0.3],
                    betas: vec![0.4, 0.2],
                },
            ] {
                assert_eq!(
                    ansatz.bind(&params.to_vec()),
                    qaoa_circuit(&p, &params, strategy),
                    "{strategy:?} binding diverged at {params:?}"
                );
            }
        }
    }

    #[test]
    fn qaoa_gradients_agree_adjoint_vs_shift() {
        use ghs_core::parameter_shift_gradient;
        let p = small_problem();
        let ansatz = qaoa_parameterized(&p, 2, SeparatorStrategy::Direct);
        let observable = GroupedPauliSum::new(&p.to_pauli_sum());
        let zero = InitialState::ZeroState;
        let v = [0.5, -0.2, 0.3, 0.8];
        let backend = FusedStatevector;
        let (e_adj, g_adj) = backend
            .expectation_gradient(&zero, &ansatz, &v, &observable)
            .unwrap();
        let (e_shift, g_shift) =
            parameter_shift_gradient(&backend, &zero, &ansatz, &v, &observable).unwrap();
        assert!((e_adj - e_shift).abs() < 1e-10);
        for (a, s) in g_adj.iter().zip(&g_shift) {
            assert!((a - s).abs() < 1e-8, "{a} vs {s}");
        }
        // Round trip of the flat layout.
        let qp = QaoaParameters::from_vec(&v);
        assert_eq!(qp.to_vec(), v.to_vec());
        assert_eq!(qp.layers(), 2);
    }
}
