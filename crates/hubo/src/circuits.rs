//! Phase-separation circuits for HUBO Hamiltonians under the two strategies
//! of the paper, and the gate census that regenerates Table III.
//!
//! * **Direct strategy** (boolean formalism, Eq. 14): each monomial
//!   `q_I ∏_{i∈I} n̂_i` exponentiates to a single multi-controlled phase gate
//!   `C^{|I|−1}P(−γ q_I)`.
//! * **Usual strategy** (Ising / Pauli-`Z` formalism, Eq. 13): each monomial
//!   `q_I ∏ Ẑ_i` exponentiates to a Pauli-`Z`-string rotation
//!   `R_{Z^{|I|}}(2γ q_I)` built from a CX ladder and one RZ.
//!
//! Both circuits implement exactly the same unitary (the two cost functions
//! are equal), so the comparison is purely about gate counts — which is the
//! content of Table III and Section V-A.

use crate::problem::{HuboProblem, IsingProblem};
use ghs_circuit::{Circuit, ControlBit, LadderStyle};
use ghs_core::pauli_string_exponential;
use ghs_operators::{PauliOp, PauliString};
use std::collections::BTreeMap;

/// Builds `exp(−iγ·H_P)` for a boolean-formalism HUBO using keyed phase
/// gates (the direct strategy).
pub fn direct_phase_separator(problem: &HuboProblem, gamma: f64) -> Circuit {
    let n = problem.num_vars().max(1);
    let mut c = Circuit::new(n);
    for (vars, w) in problem.terms() {
        if vars.is_empty() {
            c.global_phase(-gamma * w);
        } else {
            let key: Vec<ControlBit> = vars.iter().map(|&v| ControlBit::one(v)).collect();
            c.keyed_phase(key, -gamma * w);
        }
    }
    c
}

/// Builds `exp(−iγ·H_P)` for an Ising-formalism problem using Pauli-`Z`
/// string rotations (the usual strategy).
pub fn usual_phase_separator(
    problem: &IsingProblem,
    gamma: f64,
    ladder_style: LadderStyle,
) -> Circuit {
    let n = problem.num_vars().max(1);
    let mut c = Circuit::new(n);
    for (vars, w) in problem.terms() {
        let string = PauliString::with_op_on(n, PauliOp::Z, vars);
        c.append(&pauli_string_exponential(&string, w, gamma, ladder_style));
    }
    c
}

/// Abstract gate census of one strategy: gate mnemonic → count.
pub type GateCensus = BTreeMap<String, usize>;

/// One row of the Table III reproduction: the primitive being exponentiated
/// and the gate censuses of the usual and direct strategies.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Human-readable primitive, e.g. `"Ẑ Ẑ Ẑ"` or `"n̂ n̂"`.
    pub primitive: String,
    /// Gate census of the usual (Pauli-`Z` rotation) strategy.
    pub usual: GateCensus,
    /// Gate census of the direct (multi-controlled phase) strategy.
    pub direct: GateCensus,
}

fn census_usual(ising: &IsingProblem) -> GateCensus {
    let mut census = GateCensus::new();
    for (vars, _) in ising.terms() {
        let name = match vars.len() {
            0 => "global".to_string(),
            d => format!("RZ{}", "Z".repeat(d - 1)),
        };
        *census.entry(name).or_insert(0) += 1;
    }
    census
}

fn census_direct(hubo: &HuboProblem) -> GateCensus {
    let mut census = GateCensus::new();
    for (vars, _) in hubo.terms() {
        let name = match vars.len() {
            0 => "global".to_string(),
            1 => "P".to_string(),
            d => format!("{}P", "C".repeat(d - 1)),
        };
        *census.entry(name).or_insert(0) += 1;
    }
    census
}

/// Reproduces Table III of the paper: the six primitives `Ẑ`, `ẐẐ`, `ẐẐẐ`,
/// `n̂`, `n̂n̂`, `n̂n̂n̂`, each exponentiated by both strategies (each strategy
/// converting the primitive to its own formalism first).
pub fn table3_rows() -> Vec<Table3Row> {
    let mut rows = Vec::new();
    // Z-formalism primitives.
    for order in 1..=3usize {
        let mut ising = IsingProblem::new(order);
        ising.add_term(1.0, &(0..order).collect::<Vec<_>>());
        let hubo = ising.to_hubo();
        rows.push(Table3Row {
            primitive: vec!["Ẑ"; order].join(" "),
            usual: census_usual(&ising),
            direct: census_direct(&hubo),
        });
    }
    // n-formalism primitives.
    for order in 1..=3usize {
        let mut hubo = HuboProblem::new(order);
        hubo.add_term(1.0, &(0..order).collect::<Vec<_>>());
        let ising = hubo.to_ising();
        rows.push(Table3Row {
            primitive: vec!["n̂"; order].join(" "),
            usual: census_usual(&ising),
            direct: census_direct(&hubo),
        });
    }
    rows
}

/// Resource summary for a phase separator built by either strategy.
#[derive(Clone, Copy, Debug, Default)]
pub struct SeparatorResources {
    /// Parametrised gates.
    pub rotations: usize,
    /// Two-qubit gates before multi-control decomposition.
    pub two_qubit: usize,
    /// Native multi-controlled gates.
    pub multi_controlled: usize,
    /// Depth.
    pub depth: usize,
}

/// Resources of the direct phase separator of a problem.
pub fn direct_separator_resources(problem: &HuboProblem, gamma: f64) -> SeparatorResources {
    let counts = direct_phase_separator(problem, gamma).counts();
    SeparatorResources {
        rotations: counts.rotations,
        two_qubit: counts.two_qubit,
        multi_controlled: counts.multi_controlled,
        depth: counts.depth,
    }
}

/// Resources of the usual phase separator of the *same* problem (converted
/// to the Ising formalism first).
pub fn usual_separator_resources(problem: &HuboProblem, gamma: f64) -> SeparatorResources {
    let ising = problem.to_ising();
    let counts = usual_phase_separator(&ising, gamma, LadderStyle::Linear).counts();
    SeparatorResources {
        rotations: counts.rotations,
        two_qubit: counts.two_qubit,
        multi_controlled: counts.multi_controlled,
        depth: counts.depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghs_statevector::circuit_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn direct_and_usual_separators_agree() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = crate::problem::random_sparse_hubo(4, 3, 3, &mut rng);
        let gamma = 0.8;
        let direct = direct_phase_separator(&p, gamma);
        let usual = usual_phase_separator(&p.to_ising(), gamma, LadderStyle::Linear);
        let ud = circuit_unitary(&direct);
        let uu = circuit_unitary(&usual);
        assert!(ud.approx_eq(&uu, 1e-9), "distance {}", ud.distance(&uu));
    }

    #[test]
    fn phase_separator_applies_cost_phases() {
        let mut p = HuboProblem::new(3);
        p.add_term(1.5, &[0, 2]);
        p.add_term(-0.5, &[1]);
        let gamma = 0.6;
        let u = circuit_unitary(&direct_phase_separator(&p, gamma));
        for x in 0..8usize {
            let expect = ghs_math::Complex64::cis(-gamma * p.evaluate(x));
            assert!(u[(x, x)].approx_eq(expect, 1e-9));
        }
    }

    #[test]
    fn table3_matches_paper_counts() {
        let rows = table3_rows();
        // Row 0: Ẑ — usual: 1 RZ; direct: 1 P (+ constant).
        assert_eq!(rows[0].usual.get("RZ"), Some(&1));
        assert_eq!(rows[0].direct.get("P"), Some(&1));
        // Row 1: ẐẐ — usual: 1 RZZ; direct: 1 CP + 2 P (+ constant).
        assert_eq!(rows[1].usual.get("RZZ"), Some(&1));
        assert_eq!(rows[1].direct.get("CP"), Some(&1));
        assert_eq!(rows[1].direct.get("P"), Some(&2));
        // Row 2: ẐẐẐ — usual: 1 RZZZ; direct: 1 CCP + 3 CP + 3 P.
        assert_eq!(rows[2].usual.get("RZZZ"), Some(&1));
        assert_eq!(rows[2].direct.get("CCP"), Some(&1));
        assert_eq!(rows[2].direct.get("CP"), Some(&3));
        assert_eq!(rows[2].direct.get("P"), Some(&3));
        // Row 3: n̂ — usual: 1 RZ (+ constant); direct: 1 P.
        assert_eq!(rows[3].usual.get("RZ"), Some(&1));
        assert_eq!(rows[3].direct.get("P"), Some(&1));
        // Row 4: n̂n̂ — usual: 1 RZZ + 2 RZ; direct: 1 CP.
        assert_eq!(rows[4].usual.get("RZZ"), Some(&1));
        assert_eq!(rows[4].usual.get("RZ"), Some(&2));
        assert_eq!(rows[4].direct.get("CP"), Some(&1));
        assert_eq!(rows[4].direct.get("P"), None);
        // Row 5: n̂n̂n̂ — usual: 1 RZZZ + 3 RZZ + 3 RZ; direct: 1 CCP.
        assert_eq!(rows[5].usual.get("RZZZ"), Some(&1));
        assert_eq!(rows[5].usual.get("RZZ"), Some(&3));
        assert_eq!(rows[5].usual.get("RZ"), Some(&3));
        assert_eq!(rows[5].direct.get("CCP"), Some(&1));
    }

    #[test]
    fn resource_summaries_favour_direct_for_high_order_sparse() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = crate::problem::random_sparse_hubo(8, 6, 2, &mut rng);
        let d = direct_separator_resources(&p, 0.3);
        let u = usual_separator_resources(&p, 0.3);
        // Direct: one gate per monomial; usual: 2^6 − 1 fragments per monomial.
        assert!(d.rotations <= p.num_terms());
        assert!(u.rotations >= (1 << 6) - 1);
        assert!(u.two_qubit > 0);
        assert_eq!(d.two_qubit, 0);
    }
}
