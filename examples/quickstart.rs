//! Quickstart: build a Hamiltonian in the Single Component Basis, produce its
//! direct Hamiltonian-simulation circuit and its ≤6-unitary-per-term
//! block-encoding, and verify both on the state-vector simulator.
//!
//! Run with `cargo run --example quickstart`.

use gate_efficient_hs::circuit::LadderStyle;
use gate_efficient_hs::core::{
    block_encode_term, compare_strategies, direct_term_circuit, term_lcu_unitary_count,
    DirectOptions,
};
use gate_efficient_hs::math::{c64, expm_minus_i_theta};
use gate_efficient_hs::operators::{HermitianTerm, ScbHamiltonian, ScbOp, ScbString};
use gate_efficient_hs::statevector::circuit_unitary;

fn main() {
    // ---- 1. a Hamiltonian in the paper's natural formulation --------------
    // H = 0.8·(σ†₀ Ẑ₁ σ₂ + h.c.) + 0.5·n̂₀n̂₃ − 0.3·X̂₁X̂₃
    let mut h = ScbHamiltonian::new(4);
    h.push_paired(
        c64(0.8, 0.0),
        ScbString::from_pairs(4, &[(0, ScbOp::SigmaDag), (1, ScbOp::Z), (2, ScbOp::Sigma)]),
    );
    h.push_bare(
        0.5,
        ScbString::from_pairs(4, &[(0, ScbOp::N), (3, ScbOp::N)]),
    );
    h.push_bare(
        -0.3,
        ScbString::from_pairs(4, &[(1, ScbOp::X), (3, ScbOp::X)]),
    );
    println!("Hamiltonian ({} SCB terms):\n  {h}\n", h.num_terms());

    // ---- 2. direct Hamiltonian simulation of one term, exactly ------------
    let theta = 0.7;
    let term: &HermitianTerm = &h.terms()[0];
    let circuit = direct_term_circuit(term, theta, &DirectOptions::linear());
    let u = circuit_unitary(&circuit);
    let exact = expm_minus_i_theta(&term.matrix(), theta);
    println!(
        "direct circuit for exp(-i·{theta}·({term})):\n  {} gates, depth {}, error vs exact exponential = {:.2e}\n",
        circuit.len(),
        circuit.depth(),
        u.distance(&exact)
    );

    // ---- 3. resource comparison against the usual Pauli-LCU strategy ------
    let cmp = compare_strategies(&h, theta, &DirectOptions::linear());
    println!("one Trotter slice, direct strategy : {}", cmp.direct);
    println!("one Trotter slice, usual strategy  : {}", cmp.usual);
    println!(
        "SCB terms = {}, Pauli fragments = {}\n",
        cmp.scb_terms, cmp.pauli_fragments
    );

    // ---- 4. block-encoding with at most six unitaries per term ------------
    for term in h.terms() {
        let be = block_encode_term(term, LadderStyle::Linear);
        println!(
            "block-encoding of {term}: {} unitaries (≤ 6), {} ancillas, λ = {:.3}, verification error = {:.2e}",
            term_lcu_unitary_count(term),
            be.num_ancillas,
            be.normalization,
            be.verification_error(&term.matrix())
        );
    }
}
