//! Adjoint-mode gradients for variational workloads: parameterized
//! circuits, `Backend::expectation_gradient`, and the shared Adam driver.
//!
//! Walks through the full gradient stack on H₂/STO-3G:
//! 1. build the UCCSD ansatz once as a `ParameterizedCircuit`;
//! 2. cross-check the adjoint gradient against the parameter-shift rule
//!    and central finite differences at a probe point;
//! 3. count the simulation work both methods pay as the ansatz deepens;
//! 4. run gradient-based VQE through `ghs_core::optimize::minimize_adam` —
//!    the same code path the library drivers and experiments use.
//!
//! Run with `cargo run --release --example vqe_gradients`.

use gate_efficient_hs::chemistry::{h2_sto3g, run_vqe, uccsd_parameterized, uccsd_pool};
use gate_efficient_hs::circuit::Circuit;
use gate_efficient_hs::core::backend::{
    parameter_shift_gradient, Backend, FusedStatevector, InitialState,
};
use gate_efficient_hs::core::DirectOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = h2_sto3g();
    let pool = uccsd_pool(&model);
    let opts = DirectOptions::linear();
    let ansatz = uccsd_parameterized(&model, &pool, &opts);
    let observable = model.grouped_observable();
    let zero = InitialState::ZeroState;
    let backend = FusedStatevector;

    println!(
        "UCCSD ansatz for {}: {} gates, {} parameters, {} bound angles",
        model.name,
        ansatz.len(),
        ansatz.num_params(),
        ansatz.bindings().len()
    );

    // 1. Adjoint vs parameter-shift vs finite differences at a probe point.
    let thetas: Vec<f64> = (0..pool.len()).map(|k| 0.08 + 0.05 * k as f64).collect();
    let (energy, adjoint) = backend
        .expectation_gradient(&zero, &ansatz, &thetas, &observable)
        .expect("UCCSD circuits run on the fused backend");
    let (_, shift) = parameter_shift_gradient(&backend, &zero, &ansatz, &thetas, &observable)
        .expect("UCCSD circuits run on the fused backend");
    let mut scratch = Circuit::new(0);
    let mut energy_at = |p: &[f64]| {
        ansatz.bind_into(p, &mut scratch);
        backend
            .expectation(&zero, &scratch, &observable)
            .expect("UCCSD circuits run on the fused backend")
    };
    println!(
        "\nE(θ) = {:.8} Ha at the probe point (nuclear repulsion included); gradients:",
        energy + model.energy_offset
    );
    println!("excitation |      adjoint |        shift |   central FD");
    for (k, exc) in pool.iter().enumerate() {
        let h = 3e-5;
        let mut plus = thetas.clone();
        plus[k] += h;
        let mut minus = thetas.clone();
        minus[k] -= h;
        let fd = (energy_at(&plus) - energy_at(&minus)) / (2.0 * h);
        println!(
            "{:>10} | {:>12.8} | {:>12.8} | {:>12.8}",
            exc.label, adjoint[k], shift[k], fd
        );
    }

    // 2. Cost model: simulations per full gradient as the ansatz deepens.
    //    Parameter-shift pays 2–4 executions per bound gate; the adjoint
    //    method pays a constant three sweep-equivalents plus O(P) inner
    //    products, whatever the parameter count.
    println!("\nsimulations per full gradient (shift counts 2–4 per bound gate):");
    println!("layers | params | shift evals | adjoint sweeps");
    for layers in [1usize, 4, 8, 16] {
        let params = layers * pool.len();
        let bound = layers * ansatz.bindings().len();
        // 4-term rule applies to the controlled rotations of the pool.
        let shift_evals: usize = bound * 4;
        println!("{layers:>6} | {params:>6} | {shift_evals:>11} | {:>14}", 3);
    }

    // 3. Gradient-based VQE through the shared optimizer.
    let mut rng = StdRng::seed_from_u64(7);
    let result = run_vqe(&model, &opts, 1, 200, &mut rng);
    let fci = model.exact_ground_energy(3000);
    println!("\ngradient-based VQE (Adam + adjoint):");
    println!(
        "  Hartree-Fock energy : {:.8} Ha",
        result.hartree_fock_energy
    );
    println!("  VQE energy          : {:.8} Ha", result.energy);
    println!("  FCI reference       : {fci:.8} Ha");
    println!(
        "  |VQE - FCI|         : {:.2e} Ha",
        (result.energy - fci).abs()
    );
    println!(
        "  gradient evaluations: {} (each = 1 forward + 1 reverse sweep), converged: {}",
        result.evaluations, result.converged
    );
}
