//! H₂ / STO-3G ground-state estimation with a UCCSD ansatz whose factors are
//! exact electronic transitions (Section V-B of the paper), plus the
//! direct-vs-usual Trotter error comparison for the full Hamiltonian.
//!
//! Run with `cargo run --example chemistry_h2`.

use gate_efficient_hs::chemistry::{
    h2_sto3g, run_vqe, transition_resources, trotter_error_sweep, uccsd_pool, ElectronicTransition,
};
use gate_efficient_hs::core::{DirectOptions, ProductFormula};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = h2_sto3g();
    println!(
        "model: {} on {} spin orbitals",
        model.name,
        model.num_qubits()
    );

    let fci = model.exact_ground_energy(4000);
    println!("exact (FCI) ground energy  : {fci:.6} Ha");

    // Individual electronic transitions are exact single-rotation circuits.
    let t = ElectronicTransition::two_body(0.25, 0, 1, 2, 3, model.num_qubits()).unwrap();
    let res = transition_resources(&t, &DirectOptions::linear());
    println!(
        "double excitation {}: 1 rotation, {} two-qubit gates, depth {} (usual strategy: {} Pauli fragments)",
        t.label, res.two_qubit, res.depth, res.usual_fragments
    );

    // UCCSD-VQE, gradient-based: run_vqe drives the shared
    // ghs_core::optimize Adam loop with adjoint-mode gradients (every
    // iteration gets the full gradient from one forward + one reverse
    // sweep, instead of O(P) coordinate probes).
    let pool = uccsd_pool(&model);
    println!(
        "UCCSD pool: {:?}",
        pool.iter().map(|e| e.label.clone()).collect::<Vec<_>>()
    );
    let mut rng = StdRng::seed_from_u64(7);
    let vqe = run_vqe(&model, &DirectOptions::linear(), 1, 200, &mut rng);
    println!(
        "Hartree-Fock energy        : {:.6} Ha",
        vqe.hartree_fock_energy
    );
    println!(
        "UCCSD-VQE energy           : {:.6} Ha  (error vs FCI: {:.2e} Ha, {} gradient evaluations, converged: {})",
        vqe.energy,
        (vqe.energy - fci).abs(),
        vqe.evaluations,
        vqe.converged
    );

    // Full-Hamiltonian Trotter error, direct vs usual grouping.
    println!("\nfirst-order Trotter error at t = 0.5 (state-level, HF start):");
    println!("steps | direct (SCB terms) | usual (Pauli fragments)");
    for row in trotter_error_sweep(&model, 0.5, &[1, 2, 4, 8], ProductFormula::First) {
        println!(
            "{:5} | {:.6} ({} factors) | {:.6} ({} factors)",
            row.steps, row.direct_error, row.direct_factors, row.usual_error, row.usual_factors
        );
    }
}
