//! Noisy VQE on H₂/STO-3G: the optimised UCCSD energy under a depolarizing
//! Kraus channel, raw vs zero-noise-extrapolated, with the density-matrix
//! backend as the exact oracle at every noise strength and a stochastic
//! trajectory ensemble converging to it.
//!
//! Run with `cargo run --release --example noisy_vqe`.
//! The output is fully seeded and byte-deterministic; CI's noise-accuracy
//! job archives it and the determinism matrix diffs it across platforms.

use gate_efficient_hs::chemistry::{h2_sto3g, run_vqe, uccsd_circuit, uccsd_pool};
use gate_efficient_hs::core::backend::{
    Backend, DensityMatrixBackend, FusedStatevector, InitialState, TrajectoryNoise,
};
use gate_efficient_hs::core::mitigation::{zero_noise_extrapolation, ExtrapolationMethod};
use gate_efficient_hs::core::DirectOptions;
use gate_efficient_hs::operators::NoiseModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = h2_sto3g();
    let opts = DirectOptions::linear();

    // Optimise the ansatz on the noiseless backend first (seeded, so every
    // run of this example reproduces the same angles bit-for-bit) …
    let mut rng = StdRng::seed_from_u64(7);
    let vqe = run_vqe(&model, &opts, 1, 200, &mut rng);
    let pool = uccsd_pool(&model);
    let circuit = uccsd_circuit(&model, &pool, &vqe.thetas, &opts);
    let observable = model.grouped_observable();
    let zero = InitialState::ZeroState;

    let ideal = FusedStatevector
        .expectation(&zero, &circuit, &observable)
        .unwrap()
        + model.energy_offset;
    println!(
        "H2/STO-3G UCCSD ansatz: {} qubits, {} gates",
        model.num_qubits(),
        circuit.len()
    );
    println!("noiseless VQE energy : {ideal:+.9} Ha");
    println!(
        "exact (FCI) energy   : {:+.9} Ha",
        model.exact_ground_energy(4000)
    );

    // … then sweep the depolarizing strength. At every strength the density
    // backend gives the *exact* noisy energy (the oracle), the trajectory
    // ensemble a stochastic estimate of the same quantity, and global-fold
    // ZNE (λ = 1, 3, 5, Richardson) the mitigated estimate read off the
    // exact curve.
    println!("\n     p | exact noisy |  trajectory |         ZNE | raw error | ZNE error");
    for p in [0.0, 0.001, 0.002, 0.005, 0.01, 0.02] {
        let noise = NoiseModel::depolarizing(p);
        let density = DensityMatrixBackend::new(noise.clone());
        let raw = density.expectation(&zero, &circuit, &observable).unwrap() + model.energy_offset;
        let ensemble = TrajectoryNoise::new(noise, 64, 2026)
            .expectation(&zero, &circuit, &observable)
            .unwrap()
            + model.energy_offset;
        let zne = zero_noise_extrapolation(
            &density,
            &zero,
            &circuit,
            &observable,
            &[1, 3, 5],
            ExtrapolationMethod::Richardson,
        )
        .unwrap()
        .mitigated
            + model.energy_offset;
        println!(
            "{p:>6.3} | {raw:+.8} | {ensemble:+.8} | {zne:+.8} | {:.3e} | {:.3e}",
            (raw - ideal).abs(),
            (zne - ideal).abs(),
        );
        if p > 0.0 {
            assert!(
                (zne - ideal).abs() < (raw - ideal).abs(),
                "ZNE must beat the unmitigated energy at p = {p}"
            );
        }
    }
    println!("\nZNE is strictly closer to the noiseless energy than the raw");
    println!("estimate at every nonzero strength (asserted above).");
}
