//! Hypergraph max-cut with QAOA, contrasting the direct (multi-controlled
//! phase) and usual (Pauli-string rotation) phase separators — the paper's
//! Section V-A workload.
//!
//! Run with `cargo run --example hubo_maxcut`.

use gate_efficient_hs::hubo::{
    direct_separator_resources, optimize_qaoa, random_hypergraph_maxcut, usual_separator_resources,
    SeparatorStrategy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // A random 3-uniform hypergraph max-cut instance on 6 variables.
    let ising = random_hypergraph_maxcut(6, 7, 3, &mut rng);
    let hubo = ising.to_hubo();
    println!(
        "hypergraph max-cut: {} variables, {} hyperedges of order {}, HUBO form has {} monomials",
        ising.num_vars(),
        ising.num_terms(),
        ising.order(),
        hubo.num_terms()
    );

    // Gate counts of the two separator constructions for the same instance.
    let d = direct_separator_resources(&hubo, 0.8);
    let u = usual_separator_resources(&hubo, 0.8);
    println!("direct separator: {d:?}");
    println!("usual  separator: {u:?}");

    // Brute-force reference.
    let (best, best_cost) = hubo.brute_force_minimum();
    println!("brute-force optimum: assignment {best:06b}, cost {best_cost}");

    // QAOA with two layers, direct separators — gradient-based:
    // optimize_qaoa drives the shared ghs_core::optimize Adam loop with
    // adjoint-mode gradients of the prepared cost observable.
    let result = optimize_qaoa(&hubo, 2, SeparatorStrategy::Direct, 3, 100, &mut rng);
    println!(
        "QAOA (p = 2, direct separators): energy {:.4}, optimal cost {:.4}, P(optimum) = {:.3}",
        result.energy, result.optimal_cost, result.optimum_probability
    );
    println!(
        "optimised angles: γ = {:?}, β = {:?}",
        result.params.gammas, result.params.betas
    );

    // The same angles driven through the usual separator give the same state,
    // so the approximation ratio is construction-independent — only the gate
    // counts differ.
    let usual_result = optimize_qaoa(&hubo, 2, SeparatorStrategy::Usual, 3, 100, &mut rng);
    println!(
        "QAOA (p = 2, usual separators):  energy {:.4}, P(optimum) = {:.3}",
        usual_result.energy, usual_result.optimum_probability
    );
}
