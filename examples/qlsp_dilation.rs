//! Non-Hermitian matrices as Quantum Linear System Problem inputs via the
//! ladder-operator dilation `H = σ†₀ ⊗ A + h.c.` (Section V-E of the paper):
//! one Hermitian SCB term per matrix component, versus the ≥4× fragment
//! blow-up of the Pauli route.
//!
//! Run with `cargo run --example qlsp_dilation`.

use gate_efficient_hs::core::{direct_hamiltonian_slice, DirectOptions, NonHermitianOperator};
use gate_efficient_hs::math::{c64, expm_minus_i_theta};
use gate_efficient_hs::statevector::circuit_unitary;

fn main() {
    // A sparse, genuinely non-Hermitian 4×4 matrix A.
    let mut a = NonHermitianOperator::new(2);
    a.push(0, 1, c64(1.0, 0.5));
    a.push(2, 2, c64(-0.5, 0.25));
    a.push(3, 0, c64(0.75, 0.0));
    a.push(1, 3, c64(0.0, -0.6));

    println!(
        "A has {} stored components on {} qubits",
        a.components().len(),
        a.num_qubits()
    );

    // Dilate: one Hermitian SCB term per component.
    let h = a.dilate();
    println!(
        "dilation H = σ†₀⊗A + h.c.: {} SCB terms on {} qubits",
        h.num_terms(),
        h.num_qubits()
    );
    println!(
        "the usual Pauli route needs {} fragments (≥ 4× the component count, Eq. 28)",
        a.dilated_pauli_fragment_count()
    );

    // The dilation acts as ⟨1|H|0⟩ = A: verify numerically.
    let hm = h.matrix();
    let dim = 1usize << a.num_qubits();
    let block = hm.block(dim, 0, dim, dim);
    println!(
        "‖(bottom-left block of H) − A‖ = {:.2e}",
        block.distance(&a.matrix())
    );

    // One direct Trotter slice of exp(-iθH) and its error against the exact
    // exponential (the terms do not all commute, so one slice is approximate;
    // this is what HHL/QSP-style routines then query repeatedly).
    let theta = 0.4;
    let slice = direct_hamiltonian_slice(&h, theta, &DirectOptions::linear());
    let u = circuit_unitary(&slice);
    let exact = expm_minus_i_theta(&hm, theta);
    println!(
        "one direct Trotter slice at θ = {theta}: {} gates, error vs exp(-iθH) = {:.3e}",
        slice.len(),
        u.distance(&exact)
    );
}
