//! Finite-difference Poisson equation: logarithmic-term SCB decomposition of
//! the Laplacian, classical reference solve, block-encoding verification and
//! the Eq. 23 gate-count scaling (Section V-C of the paper).
//!
//! Run with `cargo run --example poisson_fdm`.

use gate_efficient_hs::circuit::LadderStyle;
use gate_efficient_hs::core::block_encode_hamiltonian;
use gate_efficient_hs::fdm::{
    fdm_scaling_table, laplacian_1d, laplacian_2d, poisson_residual, solve_poisson,
    two_node_line_operator, BoundaryCondition, TwoLineParams,
};

fn main() {
    // ---- 1. 1-D Poisson: decompose, solve classically, check residual -----
    let k = 4; // 16 nodes
    let n = 1usize << k;
    let spacing = 1.0 / (n as f64 + 1.0);
    let h = laplacian_1d(k, spacing, BoundaryCondition::Dirichlet);
    println!(
        "1-D Laplacian on {n} nodes: {} SCB terms (log2 N + diagonal)",
        h.num_terms()
    );
    let rhs = vec![1.0; n];
    let f = solve_poisson(&[k], spacing, BoundaryCondition::Dirichlet, &rhs);
    let res = poisson_residual(&[k], spacing, BoundaryCondition::Dirichlet, &f, &rhs);
    println!("classical CG solution residual ‖Δf − rhs‖ = {res:.2e}");
    println!(
        "midpoint value f(1/2) ≈ {:.5} (continuum: −0.125)",
        f[n / 2 - 1]
    );

    // ---- 2. block-encode the operator and verify the encoded block --------
    let small = laplacian_1d(2, 1.0, BoundaryCondition::Dirichlet);
    let be = block_encode_hamiltonian(&small, LadderStyle::Linear);
    println!(
        "\nblock-encoding of the 4-node Laplacian: {} unitaries, {} ancillas, λ = {:.2}, error = {:.2e}",
        be.num_unitaries,
        be.num_ancillas,
        be.normalization,
        be.verification_error(&small.matrix())
    );

    // ---- 3. the paper's two-node-line operator -----------------------------
    let p = TwoLineParams::poisson();
    let two_line = two_node_line_operator(2, &p);
    println!(
        "\npaper's two-node-line Poisson operator (8×8): {} SCB terms",
        two_line.num_terms()
    );

    // ---- 4. 2-D Laplacian as a Kronecker sum ------------------------------
    let h2d = laplacian_2d(2, 2, 1.0, BoundaryCondition::Dirichlet);
    println!("2-D Laplacian on a 4×4 grid: {} SCB terms", h2d.num_terms());

    // ---- 5. Eq. 23 scaling table -------------------------------------------
    println!("\nEq. 23 scaling (1-D neighbour operator):");
    println!("   k |     N | terms | ladder 2q | rot-controls | (log²N+logN)/2");
    for row in fdm_scaling_table(&[1, 2, 3, 4, 6, 8, 10]) {
        println!(
            "{:4} | {:5} | {:5} | {:9} | {:12} | {:5}",
            row.k, row.n, row.terms, row.ladder_two_qubit, row.total_controls, row.eq23_prediction
        );
    }
}
