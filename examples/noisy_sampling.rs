//! Pluggable backends and the batched shot engine: runs the same QAOA
//! circuit through the fused, reference and stochastic Pauli-noise
//! backends, sweeps the noise strength, and draws a 4096-shot histogram
//! through the cached alias sampler.
//!
//! Run with `cargo run --release --example noisy_sampling`.
//! CI runs this in the smoke job and archives the output next to
//! `BENCH.json`.

use gate_efficient_hs::core::backend::{
    Backend, FusedStatevector, InitialState, PauliNoise, ReferenceStatevector,
};
use gate_efficient_hs::hubo::{
    qaoa_circuit, qaoa_energy_with, qaoa_sample, random_sparse_hubo, QaoaParameters,
    SeparatorStrategy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A sparse order-3 HUBO on 8 variables and a fixed two-layer QAOA
    // schedule (the point here is the execution engines, not the angles).
    let mut rng = StdRng::seed_from_u64(11);
    let problem = random_sparse_hubo(8, 3, 16, &mut rng);
    let params = QaoaParameters {
        gammas: vec![0.45, -0.25],
        betas: vec![0.65, 0.35],
    };
    let strategy = SeparatorStrategy::Direct;
    let circuit = qaoa_circuit(&problem, &params, strategy);
    println!(
        "QAOA circuit: {} qubits, {} gates, depth {}",
        circuit.num_qubits(),
        circuit.len(),
        circuit.depth()
    );

    // ---- 1. the same energy through three interchangeable backends --------
    let fused = FusedStatevector;
    let reference = ReferenceStatevector;
    let quiet = PauliNoise::depolarizing(0.0, 5, 3);
    println!("\nnoiseless energy through each backend:");
    for backend in [&fused as &dyn Backend, &reference, &quiet] {
        let e = qaoa_energy_with(backend, &problem, &params, strategy);
        println!("  {:<24} E = {e:+.12}", backend.name());
    }

    // ---- 2. noise sweep: depolarizing strength vs ensemble energy ---------
    println!("\ndepolarizing sweep (10 trajectories, seed 3):");
    let ideal = qaoa_energy_with(&fused, &problem, &params, strategy);
    for p in [0.0, 0.002, 0.01, 0.05] {
        let noisy = PauliNoise::depolarizing(p, 10, 3);
        let e = qaoa_energy_with(&noisy, &problem, &params, strategy);
        println!(
            "  p = {p:<6} E = {e:+.6}   drift from ideal = {:+.6}",
            e - ideal
        );
    }

    // ---- 3. batched shots: 4096 draws from the cached distribution --------
    let shots = 4096;
    let seed = 7;
    let samples = qaoa_sample(&fused, &problem, &params, strategy, shots, seed);
    let mut counts = vec![0usize; 1 << circuit.num_qubits()];
    for &s in &samples {
        counts[s] += 1;
    }
    let mut top: Vec<usize> = (0..counts.len()).collect();
    top.sort_by(|&a, &b| counts[b].cmp(&counts[a]));
    println!("\ntop assignments of {shots} batched shots (seed {seed}):");
    for &x in top.iter().take(5) {
        println!(
            "  x = {x:08b}  count = {:<4} C(x) = {:+.3}",
            counts[x],
            problem.evaluate(x)
        );
    }

    // ---- 4. determinism guarantee -----------------------------------------
    let again = qaoa_sample(&fused, &problem, &params, strategy, shots, seed);
    println!(
        "\nseeded batch reproducibility: {}",
        if samples == again {
            "bit-identical"
        } else {
            "MISMATCH (bug!)"
        }
    );

    // The noisy ensemble samples through the same batched engine. Compare
    // against the ideal *probabilities*, not the finite ideal histogram:
    // count shots on assignments the ideal state visits only rarely.
    let noisy = PauliNoise::depolarizing(0.02, 10, 3);
    let zero = InitialState::ZeroState;
    let ideal_probs = fused
        .probabilities(&zero, &circuit)
        .expect("QAOA circuits run on the fused backend");
    let noisy_samples = noisy
        .sample(&zero, &circuit, shots, seed)
        .expect("QAOA circuits run on the noisy backend");
    let rare = 1e-3;
    let ideal_rare_mass: f64 = ideal_probs.iter().filter(|&&p| p < rare).sum();
    let leaked = noisy_samples
        .iter()
        .filter(|&&s| ideal_probs[s] < rare)
        .count();
    println!(
        "noisy backend: {leaked}/{shots} shots ({:.2}%) on assignments with ideal probability \
         < {rare} (ideal mass there: {:.2}%)",
        100.0 * leaked as f64 / shots as f64,
        100.0 * ideal_rare_mass
    );
}
