//! The batched job service: one typed, config-driven API over circuit
//! execution, sampling, expectation values and gradients — backed by a
//! structural plan cache (repeated topologies skip planning entirely) and a
//! bounded fair queue with deterministic seeded results.
//!
//! Run with `cargo run --release --example service_jobs`.
//! Every line below is a pure function of the job specs and their seeds —
//! never of worker count, scheduling, or shard layout. CI's determinism
//! matrix re-runs this example with `GHS_PARALLEL_THRESHOLD` forced to `0`
//! and `usize::MAX` and with `GHS_SHARD_COUNT` forced to 1 / 4 / 64, and
//! requires all recordings to be byte-identical.

use std::sync::Arc;

use gate_efficient_hs::chemistry::{h2_sto3g, uccsd_parameterized, uccsd_pool};
use gate_efficient_hs::core::DirectOptions;
use gate_efficient_hs::hubo::SeparatorStrategy;
use gate_efficient_hs::hubo::{qaoa_parameterized, random_sparse_hubo};
use gate_efficient_hs::service::{JobOutput, JobSpec, Service, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = ServiceConfig::default();
    println!(
        "job service: queue capacity {}, max in flight {}, cache capacity {}",
        config.queue_capacity, config.max_in_flight, config.cache_capacity
    );
    let service = Service::new(config);

    // ---- 1. seeded sampling of one shared 10-qubit QAOA state -------------
    // Four jobs on the same concrete circuit: the first executes and caches
    // the distribution, the rest draw from it — each seed its own stream.
    let mut rng = StdRng::seed_from_u64(42);
    let problem = random_sparse_hubo(10, 3, 20, &mut rng);
    let qaoa = Arc::new(qaoa_parameterized(&problem, 2, SeparatorStrategy::Direct));
    let state = Arc::new(qaoa.bind(&[0.45, 0.5, 0.7, 0.6]));
    let shots: Vec<JobSpec> = (0..4)
        .map(|seed| JobSpec::sample(state.clone(), 8).with_seed(seed))
        .collect();
    println!("\n8 shots of the QAOA state, four seeds:");
    for result in service.run_batch(&shots).expect("valid sampling jobs") {
        let JobOutput::Shots(outcomes) = result.output else {
            unreachable!("sampling jobs return shots");
        };
        println!("  {outcomes:?}");
    }

    // ---- 1b. the exact distribution behind those shots --------------------
    // A probabilities job on the same circuit reuses the cached fusion plan
    // (the sampling jobs above already paid for it).
    let probs_job = JobSpec::probabilities(state.clone());
    let result = &service
        .run_batch(std::slice::from_ref(&probs_job))
        .expect("valid job")[0];
    let JobOutput::Probabilities(probs) = &result.output else {
        unreachable!("probability jobs return probability vectors");
    };
    let (top, p) = probs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty register");
    println!("most likely outcome: |{top:010b}> with p = {p:.6}");

    // ---- 2. a VQE energy trace on one shared UCCSD template ---------------
    // Five bindings of the same H₂/STO-3G ansatz: one structural key and one
    // prepared observable across the whole trace. (The 4-qubit register sits
    // below the fusion crossover, so the service applies it gate-by-gate —
    // exactly what `FusedStatevector` would do.)
    let model = h2_sto3g();
    let pool = uccsd_pool(&model);
    let ansatz = Arc::new(uccsd_parameterized(&model, &pool, &DirectOptions::linear()));
    let observable = Arc::new(model.pauli_sum());
    let trace: Vec<JobSpec> = (0..5)
        .map(|step| {
            let thetas: Vec<f64> = (0..ansatz.num_params())
                .map(|k| 0.02 * step as f64 + 0.04 * k as f64)
                .collect();
            JobSpec::expectation((ansatz.clone(), thetas), observable.clone())
        })
        .collect();
    println!("\nH2/STO-3G energy trace on one shared UCCSD template:");
    for result in service.run_batch(&trace).expect("valid energy jobs") {
        let JobOutput::Expectation(energy) = result.output else {
            unreachable!("expectation jobs return energies");
        };
        println!("  E = {energy:+.12} Ha");
    }

    // ---- 3. an adjoint gradient through the same API ----------------------
    let thetas: Vec<f64> = (0..ansatz.num_params())
        .map(|k| 0.05 + 0.04 * k as f64)
        .collect();
    let gradient_job = JobSpec::gradient(ansatz.clone(), thetas, observable.clone());
    let result = &service
        .run_batch(&[gradient_job])
        .expect("valid gradient job")[0];
    let JobOutput::Gradient { energy, gradient } = &result.output else {
        unreachable!("gradient jobs return gradients");
    };
    println!("\nadjoint gradient at the probe point (E = {energy:+.12} Ha):");
    for (k, g) in gradient.iter().enumerate() {
        println!("  dE/dtheta[{k}] = {g:+.12}");
    }

    // ---- 4. the sharded engine through the same API -----------------------
    // The same QAOA state on the sharded backend: bit-identical shots and
    // probabilities whatever `GHS_SHARD_COUNT` is in force — these lines
    // are what the shard legs of the determinism matrix diff.
    use gate_efficient_hs::core::backend::BackendSpec;
    let sharded_jobs = vec![
        JobSpec::sample(state.clone(), 8)
            .with_seed(0)
            .on_backend(BackendSpec::Sharded),
        JobSpec::probabilities(state.clone()).on_backend(BackendSpec::Sharded),
    ];
    println!("\nthe same state on the sharded engine:");
    for result in service
        .run_batch(&sharded_jobs)
        .expect("valid sharded jobs")
    {
        match result.output {
            JobOutput::Shots(outcomes) => println!("  shots (seed 0): {outcomes:?}"),
            JobOutput::Probabilities(p) => {
                let (top, q) = p
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .expect("non-empty register");
                println!("  most likely outcome: |{top:010b}> with p = {q:.6}");
            }
            _ => unreachable!("sharded jobs above return shots or probabilities"),
        }
    }

    // ---- 5. the caching ledger, on a serial service -----------------------
    // A single-worker service re-running the identical stream twice: the
    // second pass adds hits and zero misses. (Counters are scheduling-order
    // dependent under concurrent workers, so the ledger demo runs serial;
    // the *results* above are scheduling-independent by construction.)
    let serial = Service::new(ServiceConfig::serial());
    let stream: Vec<JobSpec> = shots
        .iter()
        .chain(std::iter::once(&probs_job))
        .chain(&trace)
        .cloned()
        .collect();
    for pass in 1..=2 {
        serial.run_batch(&stream).expect("valid stream");
        let s = serial.cache_stats();
        println!(
            "\nserial pass {pass}: plan {}h/{}m, observable {}h/{}m, distribution {}h/{}m",
            s.plan_hits,
            s.plan_misses,
            s.observable_hits,
            s.observable_misses,
            s.distribution_hits,
            s.distribution_misses
        );
    }
}
