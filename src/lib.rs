//! # gate-efficient-hs
//!
//! Facade crate of the *Gate Efficient Composition of Hamiltonian Simulation
//! and Block-Encoding* reproduction. It re-exports the workspace crates under
//! a single name so the examples and integration tests read naturally:
//!
//! * [`math`] — complex linear algebra, matrix exponentials, sparse matrices;
//! * [`operators`] — the Single Component Basis formalism, Pauli sums,
//!   Jordan–Wigner;
//! * [`circuit`] — gate IR, ladders, decompositions, cost models;
//! * [`statevector`] — the simulator;
//! * [`stabilizer`] — the Aaronson–Gottesman tableau engine for Clifford
//!   circuits at thousands of qubits;
//! * [`core`] — direct Hamiltonian simulation, Trotter/qDRIFT, block
//!   encodings, dilation, measurement, the pluggable execution backends
//!   (fused / sharded / reference / stochastic-noise / stabilizer, with a
//!   shared batched shot
//!   sampler and adjoint/parameter-shift gradient entry points), and the
//!   shared gradient-based optimizer (`core::optimize`);
//! * [`hubo`], [`chemistry`], [`fdm`] — the three applications of Section V
//!   of the paper;
//! * [`service`] — the batched job service: typed job API over all backends,
//!   structural plan caching, fair bounded multi-queue execution with
//!   deterministic seeded results.

pub use ghs_chemistry as chemistry;
pub use ghs_circuit as circuit;
pub use ghs_core as core;
pub use ghs_fdm as fdm;
pub use ghs_hubo as hubo;
pub use ghs_math as math;
pub use ghs_operators as operators;
pub use ghs_service as service;
pub use ghs_stabilizer as stabilizer;
pub use ghs_statevector as statevector;
