//! Smoke test of the facade wiring itself: every layer is reached through the
//! `gate_efficient_hs::*` re-exports only, so a drifting re-export name or a
//! facade/sub-crate type mismatch fails here even when the per-crate test
//! suites stay green.

use gate_efficient_hs::circuit::{inverse_qft, qft, Circuit};
use gate_efficient_hs::core::{direct_term_circuit, DirectOptions};
use gate_efficient_hs::math::{c64, expm_minus_i_theta, DEFAULT_TOL};
use gate_efficient_hs::operators::{HermitianTerm, ScbOp, ScbString};
use gate_efficient_hs::statevector::{circuit_unitary, StateVector};

const TOL: f64 = 1e-9;

#[test]
fn bell_state_through_the_facade() {
    let mut circuit = Circuit::new(2);
    circuit.h(0);
    circuit.cx(0, 1);

    let mut state = StateVector::zero_state(2);
    state.apply_circuit(&circuit);

    let r = std::f64::consts::FRAC_1_SQRT_2;
    assert!(state.amplitude(0b00).approx_eq(c64(r, 0.0), TOL));
    assert!(state.amplitude(0b11).approx_eq(c64(r, 0.0), TOL));
    assert!((state.probability(0b00) - 0.5).abs() < TOL);
    assert!((state.probability(0b11) - 0.5).abs() < TOL);
    assert!((state.norm() - 1.0).abs() < TOL);
}

#[test]
fn direct_term_circuit_is_exact_through_the_facade() {
    // operators → core → circuit → statevector → math, all via re-exports.
    let term = HermitianTerm::bare(0.8, ScbString::with_op_on(3, ScbOp::Z, &[0, 2]));
    let theta = 0.45;
    let circuit = direct_term_circuit(&term, theta, &DirectOptions::linear());
    let u = circuit_unitary(&circuit);
    let expect = expm_minus_i_theta(&term.matrix(), theta);
    assert!(
        u.approx_eq(&expect, TOL),
        "distance {}",
        u.distance(&expect)
    );
}

#[test]
fn qft_roundtrips_through_the_facade() {
    let n = 4;
    let qubits: Vec<usize> = (0..n).collect();
    let mut circuit = qft(n, &qubits, true);
    circuit.append(&inverse_qft(n, &qubits, true));

    let u = circuit_unitary(&circuit);
    assert!(u.is_unitary(DEFAULT_TOL));

    // QFT followed by its inverse restores an arbitrary basis state.
    let mut state = StateVector::basis_state(n, 0b1011);
    state.apply_circuit(&circuit);
    assert!((state.probability(0b1011) - 1.0).abs() < TOL);
}
