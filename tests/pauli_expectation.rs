//! Property and regression tests of the matrix-free grouped Pauli
//! expectation engine, oracle-checked by the shared testkit:
//!
//! * matrix-free `expectation` ≡ `expectation_sparse` to 1e-12 on random
//!   2–10 qubit states and Pauli sums (Z-only, X/Y-heavy and mixed-group
//!   operator mixes), across all three execution backends — including the
//!   stochastic backend at non-zero strength, whose two expectation paths
//!   average the *same* seeded trajectories;
//! * grouped evaluation is bit-identical with the parallel threshold forced
//!   to 0 (always parallel) vs effectively infinite (never parallel);
//! * `PauliNoise` at zero strength matches the noiseless reference value
//!   exactly (bit-equal), not just to tolerance;
//! * the QWC partition really is qubit-wise commuting and never needs more
//!   settings than there are strings.

use gate_efficient_hs::core::backend::{
    Backend, FusedStatevector, InitialState, PauliNoise, ReferenceStatevector,
};
use gate_efficient_hs::operators::PauliOp;
use gate_efficient_hs::statevector::testkit::{
    random_circuit, random_pauli_sum, random_state, PauliSumKind,
};
use gate_efficient_hs::statevector::{qwc_partition, GroupedPauliSum};
use proptest::prelude::*;

/// Equivalence tolerance between the matrix-free engine and the sparse
/// oracle (the PR's acceptance criterion).
const ORACLE_TOL: f64 = 1e-12;

fn arb_kind() -> impl Strategy<Value = PauliSumKind> {
    prop_oneof![
        Just(PauliSumKind::Diagonal),
        Just(PauliSumKind::FlipHeavy),
        Just(PauliSumKind::Mixed),
    ]
}

proptest! {
    /// Acceptance criterion: the matrix-free engine matches the sparse
    /// oracle to 1e-12 on random states and sums of every structural kind.
    #[test]
    fn matrix_free_matches_sparse_oracle_on_states(
        n in 2usize..=10,
        terms in 1usize..12,
        kind in arb_kind(),
        seed in 0u64..5_000,
    ) {
        let sum = random_pauli_sum(n, terms, kind, seed);
        let state = random_state(n, seed ^ 0x0b53);
        let oracle = state.expectation_sparse(&sum.sparse_matrix());
        let grouped = GroupedPauliSum::new(&sum);
        let fast = grouped.expectation(state.amplitudes());
        prop_assert!(
            (fast - oracle).abs() < ORACLE_TOL,
            "n={n} kind={kind:?} seed={seed}: {fast} vs {oracle}"
        );
        // The per-term operators-layer path agrees as well.
        let term_by_term = sum.expectation(state.amplitudes());
        prop_assert!((term_by_term - oracle).abs() < ORACLE_TOL);
        // Grouping bookkeeping is consistent.
        prop_assert!(grouped.num_groups() <= grouped.num_terms().max(1));
        prop_assert!(grouped.num_settings() <= grouped.num_terms().max(1));
    }

    /// Acceptance criterion: all three backends agree with their own sparse
    /// oracle to 1e-12 on evolved random circuits. For the stochastic
    /// backend both paths average the same seeded trajectory ensemble, so
    /// the equivalence holds at non-zero noise strength too.
    #[test]
    fn all_backends_agree_with_sparse_oracle(
        n in 2usize..=8,
        gates in 1usize..30,
        terms in 1usize..8,
        kind in arb_kind(),
        seed in 0u64..2_000,
    ) {
        let circuit = random_circuit(n, gates, seed);
        let sum = random_pauli_sum(n, terms, kind, seed ^ 0x5ca1e);
        let sparse = sum.sparse_matrix();
        let grouped = GroupedPauliSum::new(&sum);
        let initial = InitialState::from(random_state(n, seed ^ 0x1ead));
        let noisy = PauliNoise {
            depolarizing: 0.03,
            dephasing: 0.01,
            trajectories: 3,
            seed,
        };
        for backend in [
            &FusedStatevector as &dyn Backend,
            &ReferenceStatevector,
            &noisy,
        ] {
            let fast = backend.expectation(&initial, &circuit, &grouped).unwrap();
            let oracle = backend.expectation_sparse(&initial, &circuit, &sparse).unwrap();
            prop_assert!(
                (fast - oracle).abs() < ORACLE_TOL,
                "{}: {fast} vs {oracle} (n={n}, seed={seed})",
                backend.name()
            );
        }
    }

    /// Determinism regression: forcing the always-parallel and
    /// never-parallel sweep paths yields bit-identical expectation values
    /// (fixed-chunk partial sums combined in chunk order).
    #[test]
    fn grouped_expectation_is_threshold_invariant(
        n in 2usize..=10,
        terms in 1usize..10,
        kind in arb_kind(),
        seed in 0u64..2_000,
    ) {
        let sum = random_pauli_sum(n, terms, kind, seed);
        let state = random_state(n, seed ^ 0xd00d);
        let grouped = GroupedPauliSum::new(&sum);
        let serial = grouped.expectation_with_threshold(state.amplitudes(), usize::MAX);
        let parallel = grouped.expectation_with_threshold(state.amplitudes(), 0);
        prop_assert_eq!(serial.re.to_bits(), parallel.re.to_bits());
        prop_assert_eq!(serial.im.to_bits(), parallel.im.to_bits());
    }

    /// Every QWC group is genuinely qubit-wise commuting: within a group,
    /// any two strings agree on every qubit where both are non-identity.
    #[test]
    fn qwc_partition_is_sound(
        n in 2usize..=8,
        terms in 1usize..14,
        kind in arb_kind(),
        seed in 0u64..2_000,
    ) {
        let sum = random_pauli_sum(n, terms, kind, seed);
        let groups = qwc_partition(&sum);
        // The partition must cover every string exactly once.
        prop_assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), sum.num_terms());
        for group in &groups {
            for (i, &a) in group.iter().enumerate() {
                for &b in &group[i + 1..] {
                    let pa = &sum.terms()[a].1;
                    let pb = &sum.terms()[b].1;
                    for q in 0..n {
                        let (oa, ob) = (pa.op(q), pb.op(q));
                        prop_assert!(
                            oa == PauliOp::I || ob == PauliOp::I || oa == ob,
                            "strings {pa} and {pb} conflict on qubit {q}"
                        );
                    }
                }
            }
        }
        // Diagonal sums always collapse to a single setting.
        if kind == PauliSumKind::Diagonal {
            prop_assert_eq!(groups.len(), 1);
        }
    }
}

#[test]
fn zero_noise_expectation_matches_reference_bit_exactly() {
    // The zero-strength noise backend consumes no RNG, degenerates to one
    // per-gate trajectory identical to the reference sweep, and divides by
    // an ensemble of one — the value must be *bit-equal*, not just close.
    let circuit = random_circuit(6, 35, 99);
    let sum = random_pauli_sum(6, 9, PauliSumKind::Mixed, 7);
    let grouped = GroupedPauliSum::new(&sum);
    let initial = InitialState::from(random_state(6, 3));
    let quiet = PauliNoise {
        depolarizing: 0.0,
        dephasing: 0.0,
        trajectories: 5,
        seed: 123,
    };
    let noiseless = ReferenceStatevector
        .expectation(&initial, &circuit, &grouped)
        .unwrap();
    let zero_noise = quiet.expectation(&initial, &circuit, &grouped).unwrap();
    assert_eq!(
        noiseless.to_bits(),
        zero_noise.to_bits(),
        "zero-strength noise must be RNG-free and exact: {noiseless} vs {zero_noise}"
    );
}

#[test]
fn grouped_expectation_shares_sweeps() {
    // XX/YY/XY/YX all flip the same pair of qubits: one gather sweep must
    // serve the whole family, while ZZ and the identity share the
    // probability sweep.
    use gate_efficient_hs::math::c64;
    use gate_efficient_hs::operators::{PauliString, PauliSum};
    let mut sum = PauliSum::zero(2);
    for (c, p) in [
        (0.5, "XX"),
        (-0.5, "YY"),
        (0.25, "XY"),
        (0.25, "YX"),
        (0.8, "ZZ"),
        (1.0, "II"),
    ] {
        sum.push(c64(c, 0.0), PauliString::parse(p).unwrap());
    }
    let grouped = GroupedPauliSum::new(&sum);
    assert_eq!(grouped.num_terms(), 6);
    assert_eq!(
        grouped.num_groups(),
        2,
        "one diagonal batch + one shared flip-mask sweep"
    );
    // Sanity: value still matches the oracle on a random state.
    let state = random_state(2, 21);
    let oracle = state.expectation_sparse(&sum.sparse_matrix());
    assert!((grouped.expectation(state.amplitudes()) - oracle).abs() < ORACLE_TOL);
}

#[test]
fn expectation_estimator_consistency_across_seeds() {
    // The grouped engine is seed-free: repeated evaluation of the same
    // state/observable is bit-identical (pure function), and evaluating
    // through a backend twice gives the same value.
    let circuit = random_circuit(5, 20, 11);
    let sum = random_pauli_sum(5, 6, PauliSumKind::Mixed, 31);
    let grouped = GroupedPauliSum::new(&sum);
    let zero = InitialState::ZeroState;
    let a = FusedStatevector
        .expectation(&zero, &circuit, &grouped)
        .unwrap();
    let b = FusedStatevector
        .expectation(&zero, &circuit, &grouped)
        .unwrap();
    assert_eq!(a.to_bits(), b.to_bits());
}
