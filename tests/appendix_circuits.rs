//! Reproductions of the appendix gate identities of the paper (Figs. 8–22):
//! Pauli-string rotations, the `e^{itA₁}` / `e^{itA₂}` transition gates, the
//! controlled in-between-qubit rotations, the `e^{iB̂}` pairing gate and the
//! controlled variants, all checked as exact unitaries.

use gate_efficient_hs::circuit::LadderStyle;
use gate_efficient_hs::core::{direct_term_circuit, pauli_string_exponential, DirectOptions};
use gate_efficient_hs::math::{c64, expm_minus_i_theta, CMatrix, Complex64};
use gate_efficient_hs::operators::{HermitianTerm, PauliString, ScbOp, ScbString};
use gate_efficient_hs::statevector::circuit_unitary;

const TOL: f64 = 1e-9;

/// Fig. 8 / 9 / 10: `R_{ZZ}`, `R_{ZZZ}`, `R_{XYZZ}` efficient decompositions.
#[test]
fn pauli_string_rotation_figures() {
    for (s, theta) in [("ZZ", 0.81), ("ZZZ", -0.4), ("XYZZ", 1.2)] {
        let string = PauliString::parse(s).unwrap();
        let c = pauli_string_exponential(&string, 1.0, theta / 2.0, LadderStyle::Linear);
        // The appendix writes R_{Z…Z}(θ) = exp(−iθ Z…Z / 2).
        let expect = expm_minus_i_theta(&string.matrix(), theta / 2.0);
        assert!(circuit_unitary(&c).approx_eq(&expect, TOL), "{s}");
        // Gate structure: 2(weight − 1) CX around a single RZ.
        let hist = c.gate_histogram();
        assert_eq!(
            hist.get("CX").copied().unwrap_or(0),
            2 * (string.weight() - 1)
        );
        assert_eq!(hist.get("RZ").copied().unwrap_or(0), 1);
    }
}

/// Fig. 15 / appendix VIII-A2: `e^{itA₁}` with
/// `A₁ = σ†σ + h.c. = |10⟩⟨01| + |01⟩⟨10|`, including the explicit matrix
/// form `diag-block(cos, i sin)` quoted in the appendix.
#[test]
fn exp_it_a1_gate() {
    let t = 0.73;
    let term = HermitianTerm::paired(
        c64(1.0, 0.0),
        ScbString::new(vec![ScbOp::SigmaDag, ScbOp::Sigma]),
    );
    // The appendix defines e^{itA₁}; our builder produces exp(−iθH), so use
    // θ = −t.
    let circuit = direct_term_circuit(&term, -t, &DirectOptions::linear());
    let u = circuit_unitary(&circuit);
    let mut expect = CMatrix::identity(4);
    expect[(1, 1)] = c64(t.cos(), 0.0);
    expect[(2, 2)] = c64(t.cos(), 0.0);
    expect[(1, 2)] = c64(0.0, t.sin());
    expect[(2, 1)] = c64(0.0, t.sin());
    assert!(
        u.approx_eq(&expect, TOL),
        "distance {}",
        u.distance(&expect)
    );
}

/// Fig. 19 / appendix: `e^{itA₂}` with `A₂ = σ†σ†σσ + h.c.`:
/// `cos t` on `|0011⟩, |1100⟩`, `i sin t` coupling them, identity elsewhere.
#[test]
fn exp_it_a2_gate() {
    let t = 0.41;
    let term = HermitianTerm::paired(
        c64(1.0, 0.0),
        ScbString::new(vec![
            ScbOp::SigmaDag,
            ScbOp::SigmaDag,
            ScbOp::Sigma,
            ScbOp::Sigma,
        ]),
    );
    let circuit = direct_term_circuit(&term, -t, &DirectOptions::linear());
    let u = circuit_unitary(&circuit);
    let mut expect = CMatrix::identity(16);
    let a = 0b1100usize;
    let b = 0b0011usize;
    expect[(a, a)] = c64(t.cos(), 0.0);
    expect[(b, b)] = c64(t.cos(), 0.0);
    expect[(a, b)] = c64(0.0, t.sin());
    expect[(b, a)] = c64(0.0, t.sin());
    assert!(
        u.approx_eq(&expect, TOL),
        "distance {}",
        u.distance(&expect)
    );
}

/// Fig. 11 / 12: `e^{itH₁}` where `H₁ = a†_i a_j + h.c.` carries the
/// Jordan–Wigner parity string between `i` and `j`: the sign of the rotation
/// is conditioned on the parity of the in-between qubits.
#[test]
fn jordan_wigner_one_body_gate_with_parity_string() {
    let t = 0.62;
    // a†_0 a_3 + h.c. on 4 modes → σ† Z Z σ + h.c.
    let term = HermitianTerm::paired(
        c64(1.0, 0.0),
        ScbString::new(vec![ScbOp::SigmaDag, ScbOp::Z, ScbOp::Z, ScbOp::Sigma]),
    );
    let circuit = direct_term_circuit(&term, t, &DirectOptions::linear());
    let u = circuit_unitary(&circuit);
    let expect = expm_minus_i_theta(&term.matrix(), t);
    assert!(u.approx_eq(&expect, TOL));
    // Sanity of the appendix block structure: the |1 x x 0⟩ ↔ |0 x x 1⟩
    // rotation angle flips sign with the parity of the middle qubits.
    let amp_even = u[(0b1000, 0b0001)];
    let amp_odd = u[(0b1010, 0b0011)];
    assert!(amp_even.approx_eq(-amp_odd, TOL));
}

/// Fig. 17: `\CRX{|00⟩;|11⟩}` = `e^{−i t/2 (σ†σ† + h.c.)}` — the pairing
/// gate relevant to strongly correlated electron models.
#[test]
fn pairing_gate_crx_00_11() {
    let theta = 1.1;
    let term = HermitianTerm::paired(
        c64(1.0, 0.0),
        ScbString::new(vec![ScbOp::SigmaDag, ScbOp::SigmaDag]),
    );
    let circuit = direct_term_circuit(&term, theta / 2.0, &DirectOptions::linear());
    let u = circuit_unitary(&circuit);
    let mut expect = CMatrix::identity(4);
    expect[(0, 0)] = c64((theta / 2.0).cos(), 0.0);
    expect[(3, 3)] = c64((theta / 2.0).cos(), 0.0);
    expect[(0, 3)] = c64(0.0, -(theta / 2.0).sin());
    expect[(3, 0)] = c64(0.0, -(theta / 2.0).sin());
    assert!(
        u.approx_eq(&expect, TOL),
        "distance {}",
        u.distance(&expect)
    );
}

/// Fig. 18: `e^{−iB̂}` with `B̂ = α(σ†σ + h.c.) + β(σ†σ† + h.c.)`: the
/// two blocks rotate by α and β independently.
#[test]
fn combined_hopping_and_pairing_gate() {
    let (alpha, beta) = (0.7, -0.35);
    let mut b = CMatrix::zeros(4, 4);
    // α on the |01⟩↔|10⟩ block, β on the |00⟩↔|11⟩ block.
    b[(1, 2)] = c64(alpha, 0.0);
    b[(2, 1)] = c64(alpha, 0.0);
    b[(0, 3)] = c64(beta, 0.0);
    b[(3, 0)] = c64(beta, 0.0);
    let expect = expm_minus_i_theta(&b, 1.0);

    // Build as two commuting SCB terms evolved in sequence.
    let hop = HermitianTerm::paired(
        c64(alpha, 0.0),
        ScbString::new(vec![ScbOp::SigmaDag, ScbOp::Sigma]),
    );
    let pair = HermitianTerm::paired(
        c64(beta, 0.0),
        ScbString::new(vec![ScbOp::SigmaDag, ScbOp::SigmaDag]),
    );
    let mut circuit = direct_term_circuit(&hop, 1.0, &DirectOptions::linear());
    circuit.append(&direct_term_circuit(&pair, 1.0, &DirectOptions::linear()));
    let u = circuit_unitary(&circuit);
    assert!(
        u.approx_eq(&expect, TOL),
        "distance {}",
        u.distance(&expect)
    );
    // The appendix matrix form: cos α / cos β diagonals.
    assert!(u[(1, 1)].approx_eq(c64(alpha.cos(), 0.0), TOL));
    assert!(u[(0, 0)].approx_eq(c64(beta.cos(), 0.0), TOL));
}

/// Figs. 20–22: the controlled variants `C·e^{itA}` — adding an `n̂` factor
/// to the term makes the evolution fire only on the control's `|1⟩` state.
#[test]
fn controlled_transition_gates() {
    let t = 0.9;
    // Controlled e^{-itA₁}: n ⊗ (σ†σ + h.c.).
    let term = HermitianTerm::paired(
        c64(1.0, 0.0),
        ScbString::new(vec![ScbOp::N, ScbOp::SigmaDag, ScbOp::Sigma]),
    );
    let u = circuit_unitary(&direct_term_circuit(&term, t, &DirectOptions::linear()));
    let expect = expm_minus_i_theta(&term.matrix(), t);
    assert!(u.approx_eq(&expect, TOL));
    // Control off (first qubit 0): identity block.
    for r in 0..4 {
        for c in 0..4 {
            let e = if r == c {
                Complex64::ONE
            } else {
                Complex64::ZERO
            };
            assert!(u[(r, c)].approx_eq(e, TOL));
        }
    }
    // Control on: the A₁ rotation block.
    assert!(u[(0b101, 0b110)].abs() > 0.1);
}

/// Fig. 23 / 24: the fermionic SWAP — verified through its defining operator
/// `FSWAP = I − a†ᵢaᵢ − a†ⱼaⱼ + a†ᵢaⱼ + a†ⱼaᵢ` on adjacent modes.
#[test]
fn fermionic_swap_operator() {
    // On two adjacent modes, FSWAP = diag(1, swap, -1) in the occupation
    // basis |n_i n_j⟩ = |00⟩,|01⟩,|10⟩,|11⟩.
    let n0 = ScbString::with_op_on(2, ScbOp::N, &[0]).matrix();
    let n1 = ScbString::with_op_on(2, ScbOp::N, &[1]).matrix();
    let hop = HermitianTerm::paired(
        c64(1.0, 0.0),
        ScbString::new(vec![ScbOp::SigmaDag, ScbOp::Sigma]),
    )
    .matrix();
    let mut fswap = CMatrix::identity(4);
    fswap.add_scaled(&n0, c64(-1.0, 0.0));
    fswap.add_scaled(&n1, c64(-1.0, 0.0));
    fswap.add_scaled(&hop, Complex64::ONE);
    // Expected matrix: |00⟩→|00⟩, |01⟩↔|10⟩, |11⟩→−|11⟩.
    let mut expect = CMatrix::zeros(4, 4);
    expect[(0, 0)] = Complex64::ONE;
    expect[(1, 2)] = Complex64::ONE;
    expect[(2, 1)] = Complex64::ONE;
    expect[(3, 3)] = c64(-1.0, 0.0);
    assert!(fswap.approx_eq(&expect, TOL));
    assert!(fswap.is_unitary(TOL));
}
