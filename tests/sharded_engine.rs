//! Sharded-engine acceptance tests — the contract behind the CI
//! `GHS_SHARD_COUNT` determinism matrix:
//!
//! * the sharded engine agrees with the flat fused engine **and** the
//!   per-gate reference to 1e-12 on random 2–12 qubit circuits, at forced
//!   shard counts {1, 2, 8} (the env knob is process-wide, so the tests pin
//!   counts through the explicit `*_with` constructors);
//! * seeded outputs are **bit-identical** across shard counts: every
//!   logical amplitude, every probability, and every seeded sample stream
//!   matches `==`, not just to tolerance;
//! * the sharding relabeling round-trips exactly and never changes a
//!   logical amplitude;
//! * the `sharded` backend registers under `backend_by_name` and matches
//!   the fused backend bit-for-bit through the service-facing trait.

use gate_efficient_hs::circuit::QubitRelabeling;
use gate_efficient_hs::core::backend::{backend_by_name, Backend, FusedStatevector, InitialState};
use gate_efficient_hs::statevector::testkit::random_circuit;
use gate_efficient_hs::statevector::{ShardedStateVector, StateVector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Equivalence tolerance against the per-gate reference engine.
const TOL: f64 = 1e-12;

/// Forced shard counts exercised everywhere: degenerate (1), minimal
/// splitting (2), and more shards than some registers have amplitudes
/// (8, which the engine clamps to `2^n`).
const COUNTS: [usize; 3] = [1, 2, 8];

proptest! {
    /// Acceptance criterion: sharded ≡ flat fused ≡ reference to 1e-12 on
    /// random 2–12 qubit circuits at every forced shard count.
    #[test]
    fn sharded_matches_flat_and_reference(
        n in 2usize..=12,
        gates in 1usize..40,
        seed in 0u64..5_000,
    ) {
        let c = random_circuit(n, gates, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let s0 = StateVector::random_state(n, &mut rng);

        let mut flat = s0.clone();
        flat.apply_fused(&c.fused());
        let mut reference = s0.clone();
        reference.run_unfused(&c);
        prop_assert!(flat.distance(&reference) < TOL);

        for count in COUNTS {
            let mut sharded = ShardedStateVector::from_state_with(&s0, count);
            sharded.run(&c);
            let out = sharded.to_state();
            let d = out.distance(&reference);
            prop_assert!(
                d < TOL,
                "distance {d} to reference at n={n}, gates={gates}, seed={seed}, count={count}"
            );
            // Against the flat *fused* engine the match is exact: both run
            // the same fused kernels over the same amplitudes in the same
            // order, so every f64 bit agrees.
            for i in 0..out.dim() {
                prop_assert_eq!(out.amplitude(i), flat.amplitude(i));
            }
        }
    }

    /// Seeded sampling is bit-identical across shard counts: the sample
    /// streams — not just the distributions — match exactly.
    #[test]
    fn seeded_sampling_is_bit_identical_across_shard_counts(
        n in 2usize..=9,
        gates in 1usize..30,
        seed in 0u64..2_000,
    ) {
        let c = random_circuit(n, gates, seed);
        let reference: Option<Vec<usize>> = None;
        let mut reference = reference;
        for count in COUNTS {
            let mut sharded = ShardedStateVector::basis_state_with(n, 0, count);
            sharded.run(&c);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xca11);
            let shots = sharded.to_state().sample(64, &mut rng);
            match &reference {
                None => reference = Some(shots),
                Some(r) => prop_assert_eq!(&shots, r),
            }
        }
    }

    /// The sharding relabeling round-trips exactly on the fused circuit and
    /// never changes a logical amplitude read back from the engine.
    #[test]
    fn relabeling_round_trips_and_preserves_logical_order(
        n in 2usize..=10,
        gates in 1usize..30,
        seed in 0u64..2_000,
    ) {
        let c = random_circuit(n, gates, seed);
        let fused = c.fused();
        let r = QubitRelabeling::for_sharding(&fused);
        prop_assert_eq!(fused.relabeled(&r).relabeled(&r.inverse()), fused.clone());

        let mut rng = StdRng::seed_from_u64(seed ^ 0x0bad);
        let s0 = StateVector::random_state(n, &mut rng);
        let mut relabeled = ShardedStateVector::from_state_with(&s0, 4);
        relabeled.run_fused_with(&fused, &r);
        let mut identity = ShardedStateVector::from_state_with(&s0, 4);
        identity.run_fused_with(&fused, &QubitRelabeling::identity(n));
        for i in 0..1usize << n {
            prop_assert_eq!(relabeled.amplitude(i), identity.amplitude(i));
        }
    }
}

/// The fourth backend is registered and equals the fused backend
/// bit-for-bit through the `Backend` trait (state and seeded samples).
#[test]
fn sharded_backend_registers_and_matches_fused() {
    let backend = backend_by_name("sharded").expect("sharded backend registered");
    assert_eq!(backend.name(), "sharded-statevector");
    let c = random_circuit(10, 60, 7);
    let s0 = InitialState::basis(3);
    let sharded = backend.run(&s0, &c).unwrap();
    let fused = FusedStatevector.run(&s0, &c).unwrap();
    for i in 0..sharded.dim() {
        assert_eq!(sharded.amplitude(i), fused.amplitude(i));
    }
    assert_eq!(
        backend.sample(&s0, &c, 256, 99).unwrap(),
        FusedStatevector.sample(&s0, &c, 256, 99).unwrap()
    );
    // A dense initial state threads through both engines bit-identically.
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let dense = InitialState::from(StateVector::random_state(10, &mut rng));
    let a = backend.run(&dense, &c).unwrap();
    let b = FusedStatevector.run(&dense, &c).unwrap();
    for i in 0..a.dim() {
        assert_eq!(a.amplitude(i), b.amplitude(i));
    }
}
