//! Stabilizer-engine acceptance tests — the contract of the fifth backend:
//!
//! * the tableau engine agrees **exactly** with the dense reference and
//!   fused backends on random 2–10 qubit Clifford circuits: basis
//!   probabilities to 1e-12 and Pauli-sum expectations to 1e-10 (tableau
//!   values are exact dyadics / signed integers, so the tolerance absorbs
//!   only dense round-off);
//! * seeded shot streams are **bit-identical** across runs — the CI
//!   determinism matrix re-runs this suite with `GHS_PARALLEL_THRESHOLD`
//!   forced to `0` and `usize::MAX`, and the stream must not change;
//! * a 1024-qubit GHZ circuit (far beyond dense reach) samples only the
//!   all-zeros and all-ones strings, and sees both;
//! * everything outside the Clifford vocabulary is a **typed error**, not
//!   a panic: non-Clifford gates, dense initial states, dense state
//!   output, and oversized registers each map to their `BackendError`
//!   variant, at the backend layer and through `ghs_service` admission;
//! * stabilizer service jobs reuse the cached prepared tableau on warm
//!   re-runs and return `BitShots` for registers wider than a machine
//!   word.
//!
//! The nightly CI job re-runs this suite with `GHS_PROPTEST_CASES=2048`.

use std::sync::Arc;

use gate_efficient_hs::circuit::Circuit;
use gate_efficient_hs::core::backend::{
    backend_by_name, Backend, BackendError, BackendSpec, FusedStatevector, InitialState,
    ReferenceStatevector, StabilizerBackend,
};
use gate_efficient_hs::service::{JobOutput, JobSpec, Service, ServiceConfig, SubmitError};
use gate_efficient_hs::stabilizer::STABILIZER_DENSE_MAX_QUBITS;
use gate_efficient_hs::statevector::testkit::{
    random_clifford_circuit, random_pauli_sum, PauliSumKind,
};
use gate_efficient_hs::statevector::GroupedPauliSum;
use proptest::prelude::*;

/// Probability agreement tolerance: tableau probabilities are exact
/// dyadics, so this only absorbs dense-engine round-off.
const PROB_TOL: f64 = 1e-12;

/// Expectation agreement tolerance: tableau term values are exactly 0/±1;
/// the dense side accumulates per-amplitude round-off over 2^n terms.
const EXP_TOL: f64 = 1e-10;

/// The GHZ-preparation circuit: H then a CX chain.
fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Acceptance criterion: stabilizer ≡ reference ≡ fused on random
    /// Clifford circuits — exact basis probabilities and Pauli-sum
    /// expectations through the shared `Backend` trait.
    #[test]
    fn stabilizer_matches_dense_backends_on_clifford_circuits(
        n in 2usize..=10,
        gates in 1usize..60,
        seed in 0u64..5_000,
    ) {
        let c = random_clifford_circuit(n, gates, seed);
        let zero = InitialState::ZeroState;
        let tableau = StabilizerBackend.probabilities(&zero, &c).unwrap();
        let fused = FusedStatevector.probabilities(&zero, &c).unwrap();
        let reference = ReferenceStatevector.probabilities(&zero, &c).unwrap();
        prop_assert_eq!(tableau.len(), fused.len());
        for (i, t) in tableau.iter().enumerate() {
            prop_assert!(
                (t - fused[i]).abs() < PROB_TOL,
                "outcome {i}: tableau {} vs fused {} (n={n}, gates={gates}, seed={seed})",
                t, fused[i]
            );
            prop_assert!((t - reference[i]).abs() < PROB_TOL);
        }

        let sum = random_pauli_sum(n, 6, PauliSumKind::Mixed, seed ^ 0x7ab1ea);
        let grouped = GroupedPauliSum::new(&sum);
        let e_tab = StabilizerBackend.expectation(&zero, &c, &grouped).unwrap();
        let e_fused = FusedStatevector.expectation(&zero, &c, &grouped).unwrap();
        prop_assert!(
            (e_tab - e_fused).abs() < EXP_TOL,
            "expectation: tableau {e_tab} vs fused {e_fused} (n={n}, gates={gates}, seed={seed})"
        );
    }

    /// Basis initial states agree across the tableau and dense engines too
    /// (`starting_at`-style jobs route through `InitialState::Basis`).
    #[test]
    fn basis_initials_agree_with_dense_backends(
        n in 2usize..=8,
        gates in 1usize..40,
        seed in 0u64..2_000,
    ) {
        let c = random_clifford_circuit(n, gates, seed);
        let start = InitialState::basis(seed as usize % (1 << n));
        let tableau = StabilizerBackend.probabilities(&start, &c).unwrap();
        let fused = FusedStatevector.probabilities(&start, &c).unwrap();
        for (t, f) in tableau.iter().zip(&fused) {
            prop_assert!((t - f).abs() < PROB_TOL);
        }
    }

    /// Seeded shot streams are a pure function of `(tableau, shots, seed)`:
    /// bit-identical across runs (and across the `GHS_PARALLEL_THRESHOLD`
    /// legs of the determinism matrix re-running this very test), prefix
    /// chunks included; a different seed moves the stream.
    #[test]
    fn seeded_shots_are_bit_reproducible(
        n in 2usize..=10,
        gates in 1usize..40,
        seed in 0u64..2_000,
    ) {
        let c = random_clifford_circuit(n, gates, seed);
        let zero = InitialState::ZeroState;
        let backend = StabilizerBackend;
        // 48 shots crosses the internal parallel chunking threshold, so the
        // serial and rayon paths both run under the matrix extremes.
        let a = backend.sample_bits(&zero, &c, 48, seed).unwrap();
        let b = backend.sample_bits(&zero, &c, 48, seed).unwrap();
        prop_assert_eq!(&a, &b);
        // Dense-index sampling is the same stream packed into words.
        let idx = backend.sample(&zero, &c, 48, seed).unwrap();
        for (bits, &i) in a.iter().zip(&idx) {
            prop_assert_eq!(bits.to_index(), Some(i));
        }
        let moved = backend.sample_bits(&zero, &c, 48, seed ^ 0xdead).unwrap();
        prop_assert!(moved.len() == a.len());
    }
}

/// Acceptance criterion: a 1024-qubit GHZ register — far past any dense
/// engine — samples only the all-zeros/all-ones strings, sees both, and the
/// seeded stream is bit-identical across runs.
#[test]
fn ghz_1024_samples_only_the_two_branches() {
    let n = 1024;
    let c = ghz(n);
    let zero = InitialState::ZeroState;
    let shots = StabilizerBackend.sample_bits(&zero, &c, 64, 11).unwrap();
    let mut saw = [false, false];
    for bits in &shots {
        let ones = bits.count_ones();
        assert!(ones == 0 || ones == n, "non-GHZ outcome: {ones} ones");
        saw[usize::from(ones == n)] = true;
    }
    assert!(
        saw[0] && saw[1],
        "64 fair-coin shots must see both branches"
    );
    let again = StabilizerBackend.sample_bits(&zero, &c, 64, 11).unwrap();
    assert_eq!(shots, again, "seeded GHZ stream must be bit-identical");
}

/// Every unsupported request maps to its typed `BackendError` variant.
#[test]
fn unsupported_requests_yield_typed_errors() {
    let backend = StabilizerBackend;
    let zero = InitialState::ZeroState;

    let mut non_clifford = Circuit::new(2);
    non_clifford.h(0).rz(1, 0.3);
    assert!(!non_clifford.is_clifford());
    match backend.sample_bits(&zero, &non_clifford, 8, 0) {
        Err(BackendError::UnsupportedCircuit { gate, backend }) => {
            assert_eq!(backend, "stabilizer-tableau");
            assert!(gate.contains("RZ"), "gate name should surface: {gate}");
        }
        other => panic!("expected UnsupportedCircuit, got {other:?}"),
    }

    let wide = ghz(STABILIZER_DENSE_MAX_QUBITS + 1);
    assert!(matches!(
        backend.probabilities(&zero, &wide),
        Err(BackendError::RegisterTooLarge { .. })
    ));

    let dense = InitialState::from(gate_efficient_hs::statevector::StateVector::basis_state(
        2, 1,
    ));
    let clifford = ghz(2);
    assert!(matches!(
        backend.sample_bits(&dense, &clifford, 8, 0),
        Err(BackendError::InitialStateMismatch { .. })
    ));

    assert!(matches!(
        backend.run(&zero, &clifford),
        Err(BackendError::DenseStateUnavailable { .. })
    ));
}

/// Stabilizer service jobs: outputs match the backend layer bit-for-bit,
/// warm re-runs serve the prepared tableau from the plan cache, registers
/// wider than a machine word return `BitShots`, and non-Clifford or
/// gradient requests are rejected at admission with typed errors.
#[test]
fn service_routes_stabilizer_jobs_through_the_tableau_cache() {
    let circuit = Arc::new(random_clifford_circuit(12, 40, 77));
    let observable = Arc::new(random_pauli_sum(12, 5, PauliSumKind::Mixed, 78));
    let jobs = vec![
        JobSpec::sample(circuit.clone(), 96)
            .with_seed(5)
            .on_backend(BackendSpec::Stabilizer),
        JobSpec::expectation(circuit.clone(), observable.clone())
            .on_backend(BackendSpec::Stabilizer),
        JobSpec::probabilities(circuit.clone())
            .starting_at(3)
            .on_backend(BackendSpec::Stabilizer),
    ];
    let service = Service::new(ServiceConfig::default());
    let results = service.run_batch(&jobs).expect("valid stabilizer jobs");

    let zero = InitialState::ZeroState;
    let direct = StabilizerBackend.sample(&zero, &circuit, 96, 5).unwrap();
    assert_eq!(results[0].output, JobOutput::Shots(direct));
    let grouped = GroupedPauliSum::new(&observable);
    let energy = StabilizerBackend
        .expectation(&zero, &circuit, &grouped)
        .unwrap();
    assert_eq!(results[1].output, JobOutput::Expectation(energy));
    let probs = StabilizerBackend
        .probabilities(&InitialState::basis(3), &circuit)
        .unwrap();
    assert_eq!(results[2].output, JobOutput::Probabilities(probs));

    // A warm re-run adds tableau hits and zero new misses.
    let cold = service.cache_stats();
    assert!(cold.tableau_misses > 0);
    let rerun = service.run_batch(&jobs).expect("valid stabilizer jobs");
    assert_eq!(
        results.iter().map(|r| &r.output).collect::<Vec<_>>(),
        rerun.iter().map(|r| &r.output).collect::<Vec<_>>()
    );
    let warm = service.cache_stats();
    assert_eq!(warm.tableau_misses, cold.tableau_misses);
    assert!(warm.tableau_hits > cold.tableau_hits);
}

/// Registers wider than a machine word cannot be packed into `usize`
/// sample indices: the service returns the raw `BitShots` strings.
#[test]
fn wide_registers_return_bit_shots() {
    let circuit = Arc::new(ghz(80));
    let service = Service::new(ServiceConfig::default());
    let results = service
        .run_batch(&[JobSpec::sample(circuit, 16)
            .with_seed(3)
            .on_backend(BackendSpec::Stabilizer)])
        .expect("wide Clifford sampling is supported");
    match &results[0].output {
        JobOutput::BitShots(shots) => {
            assert_eq!(shots.len(), 16);
            for bits in shots {
                assert_eq!(bits.len(), 80);
                let ones = bits.count_ones();
                assert!(ones == 0 || ones == 80);
            }
        }
        other => panic!("expected BitShots, got {other:?}"),
    }
}

/// Admission rejects what the tableau engine cannot run — with the typed
/// `BackendError` inside `SubmitError::Unsupported`, before any queueing.
#[test]
fn admission_rejects_unsupported_stabilizer_jobs() {
    let service = Service::new(ServiceConfig::default());

    let mut non_clifford = Circuit::new(3);
    non_clifford.h(0).cx(0, 1).rx(2, 0.4);
    let err = service
        .run_batch(
            &[JobSpec::sample(Arc::new(non_clifford), 8).on_backend(BackendSpec::Stabilizer)],
        )
        .expect_err("non-Clifford circuits must be rejected at admission");
    assert!(
        matches!(
            err,
            SubmitError::Unsupported(BackendError::UnsupportedCircuit { .. })
        ),
        "got {err:?}"
    );

    // Probability readout past the dense cap is rejected up front, not at
    // execution time.
    let wide = Arc::new(ghz(STABILIZER_DENSE_MAX_QUBITS + 4));
    let err = service
        .run_batch(&[JobSpec::probabilities(wide).on_backend(BackendSpec::Stabilizer)])
        .expect_err("2^n probability output past the cap must be rejected");
    assert!(
        matches!(
            err,
            SubmitError::Unsupported(BackendError::RegisterTooLarge { .. })
        ),
        "got {err:?}"
    );

    // The registry resolves the documented name to the same backend.
    let by_name = backend_by_name("stabilizer").expect("documented name");
    assert_eq!(by_name.name(), "stabilizer-tableau");
    assert!(by_name.capabilities().clifford_only);
}
