//! Cross-crate integration tests, including the reproduction of the paper's
//! flagship Fig. 2 example: the exact direct Hamiltonian simulation of the
//! 15-qubit term
//! `n̂₀m̂₁m̂₂X̂₃Ŷ₄σ̂†₅n̂₆σ̂₇σ̂₈σ̂₉σ̂†₁₀Ŷ₁₁Ẑ₁₂σ̂†₁₃σ̂₁₄ + h.c.`,
//! which the usual strategy expands into 2048 Pauli strings.

use gate_efficient_hs::circuit::LadderStyle;
use gate_efficient_hs::core::{
    compare_strategies, direct_term_circuit, ComplexCoefficientMode, DirectOptions,
};
use gate_efficient_hs::math::{c64, expm_multiply_minus_i_theta, vec_distance};
use gate_efficient_hs::operators::{HermitianTerm, ScbHamiltonian, ScbOp, ScbString};
use gate_efficient_hs::statevector::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The exact 15-qubit term of Fig. 2.
fn fig2_term() -> HermitianTerm {
    let ops = vec![
        ScbOp::N,
        ScbOp::M,
        ScbOp::M,
        ScbOp::X,
        ScbOp::Y,
        ScbOp::SigmaDag,
        ScbOp::N,
        ScbOp::Sigma,
        ScbOp::Sigma,
        ScbOp::Sigma,
        ScbOp::SigmaDag,
        ScbOp::Y,
        ScbOp::Z,
        ScbOp::SigmaDag,
        ScbOp::Sigma,
    ];
    HermitianTerm::paired(c64(1.0, 0.0), ScbString::new(ops))
}

#[test]
fn fig2_fifteen_qubit_term_is_simulated_exactly() {
    let term = fig2_term();
    assert_eq!(term.num_qubits(), 15);
    // The usual strategy would need 2^11 = 2048 Pauli strings (Section III).
    assert_eq!(term.string.pauli_fragment_count(), 2048);

    let theta = 0.37;
    for opts in [
        DirectOptions::linear(),
        DirectOptions::pyramidal(),
        DirectOptions {
            ladder_style: LadderStyle::Linear,
            complex_mode: ComplexCoefficientMode::PaperSplit,
        },
    ] {
        let circuit = direct_term_circuit(&term, theta, &opts);
        // Verify the action on random states against the sparse exponential
        // (a 2^15-dimensional dense check would be infeasible).
        let sparse = term.sparse_matrix();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..3 {
            let psi = StateVector::random_state(15, &mut rng);
            let mut evolved = psi.clone();
            evolved.apply_circuit(&circuit);
            let exact = expm_multiply_minus_i_theta(&sparse, theta, psi.amplitudes());
            let err = vec_distance(evolved.amplitudes(), &exact);
            assert!(err < 1e-8, "{opts:?}: state error {err}");
        }
        // Structural claims of the paper: a single arbitrary rotation and a
        // linear number of two-qubit gates.
        let counts = circuit.counts();
        assert_eq!(counts.rotations, 1, "{opts:?}");
        assert!(counts.two_qubit <= 2 * 15 + 4);
    }
}

#[test]
fn fig2_pyramidal_ladders_reduce_depth() {
    let term = fig2_term();
    let lin = direct_term_circuit(&term, 0.2, &DirectOptions::linear());
    let pyr = direct_term_circuit(&term, 0.2, &DirectOptions::pyramidal());
    assert!(pyr.depth() < lin.depth());
    // Same two-qubit gate count (Fig. 3's point).
    assert_eq!(lin.counts().two_qubit, pyr.counts().two_qubit);
}

#[test]
fn direct_and_usual_strategies_converge_on_random_mixed_hamiltonian() {
    // A 4-qubit Hamiltonian mixing all four operator families.
    let mut h = ScbHamiltonian::new(4);
    h.push_paired(
        c64(0.45, 0.0),
        ScbString::from_pairs(4, &[(0, ScbOp::SigmaDag), (1, ScbOp::Z), (2, ScbOp::Sigma)]),
    );
    h.push_bare(
        0.3,
        ScbString::from_pairs(4, &[(1, ScbOp::X), (3, ScbOp::X)]),
    );
    h.push_bare(
        -0.7,
        ScbString::from_pairs(4, &[(0, ScbOp::N), (3, ScbOp::N)]),
    );
    h.push_paired(
        c64(0.2, 0.1),
        ScbString::from_pairs(4, &[(2, ScbOp::SigmaDag), (3, ScbOp::SigmaDag)]),
    );

    let t = 0.9;
    let steps = 24;
    let direct = gate_efficient_hs::core::direct_product_formula(
        &h,
        t,
        steps,
        gate_efficient_hs::core::ProductFormula::Second,
        &DirectOptions::linear(),
    );
    let usual = gate_efficient_hs::core::usual_product_formula(
        &h.to_pauli_sum(),
        t,
        steps,
        gate_efficient_hs::core::ProductFormula::Second,
        LadderStyle::Linear,
    );
    let m = h.matrix();
    let e_direct = gate_efficient_hs::core::unitary_error(&direct, &m, t);
    let e_usual = gate_efficient_hs::core::unitary_error(&usual, &m, t);
    assert!(e_direct < 2e-2, "direct error {e_direct}");
    assert!(e_usual < 2e-2, "usual error {e_usual}");

    // And the resource comparison reports fewer rotations for the direct
    // strategy on this Hamiltonian.
    let cmp = compare_strategies(&h, 0.3, &DirectOptions::linear());
    assert!(cmp.direct.rotations <= cmp.usual.rotations);
}

#[test]
fn applications_compose_end_to_end() {
    // HUBO → Hamiltonian → direct slice is diagonal and exact.
    let mut hubo = gate_efficient_hs::hubo::HuboProblem::new(3);
    hubo.add_term(1.0, &[0, 1, 2]);
    hubo.add_term(-2.0, &[1]);
    let h = hubo.to_scb_hamiltonian();
    assert!(h.all_terms_commute());
    let slice =
        gate_efficient_hs::core::direct_hamiltonian_slice(&h, 1.3, &DirectOptions::linear());
    let u = gate_efficient_hs::statevector::circuit_unitary(&slice);
    let exact = gate_efficient_hs::math::expm_minus_i_theta(&h.matrix(), 1.3);
    assert!(u.approx_eq(&exact, 1e-9));

    // FDM Laplacian block-encoding verifies through the same machinery.
    let lap = gate_efficient_hs::fdm::laplacian_1d(
        2,
        1.0,
        gate_efficient_hs::fdm::BoundaryCondition::Dirichlet,
    );
    let be = gate_efficient_hs::core::block_encode_hamiltonian(&lap, LadderStyle::Linear);
    assert!(be.verification_error(&lap.matrix()) < 1e-8);

    // Chemistry transition term feeds the measurement estimator.
    let trans = gate_efficient_hs::chemistry::ElectronicTransition::one_body(0.4, 0, 2, 3);
    let meas = gate_efficient_hs::core::TermMeasurement::new(&trans.term, LadderStyle::Linear);
    let mut rng = StdRng::seed_from_u64(5);
    let state = StateVector::random_state(3, &mut rng);
    let exact = state.expectation_dense(&trans.term.matrix()).re;
    assert!((meas.exact(&state) - exact).abs() < 1e-9);
}
