//! Noise-and-mitigation contract tests: the stochastic trajectory ensemble
//! converges to the exact density-matrix oracle on random circuits and Kraus
//! channels, zero-strength channels are **bit-identical** to the noiseless
//! reference (not merely close), malformed Kraus sets are rejected at
//! construction, zero-noise extrapolation exactly recovers the noiseless
//! energy on polynomial synthetic noise and strictly improves the real noisy
//! H₂ energy, and the service executes mitigated-expectation jobs
//! deterministically. The seeded 6-qubit oracle-convergence test is the CI
//! `noise-accuracy` gate.

use std::sync::Arc;

use gate_efficient_hs::chemistry::{h2_sto3g, uccsd_circuit, uccsd_pool};
use gate_efficient_hs::circuit::Circuit;
use gate_efficient_hs::core::backend::{
    Backend, DensityMatrixBackend, FusedStatevector, InitialState, TrajectoryNoise,
};
use gate_efficient_hs::core::mitigation::{
    extrapolate_to_zero, zero_noise_extrapolation, ExtrapolationMethod, ReadoutCalibration,
};
use gate_efficient_hs::core::DirectOptions;
use gate_efficient_hs::math::{c64, CMatrix};
use gate_efficient_hs::operators::{KrausChannel, KrausError, NoiseModel, PauliString, PauliSum};
use gate_efficient_hs::service::{JobOutput, JobSpec, Service, ServiceConfig};
use gate_efficient_hs::statevector::testkit::{random_circuit, random_pauli_sum, PauliSumKind};
use gate_efficient_hs::statevector::GroupedPauliSum;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random single-qubit channel spanning all four built-in families.
fn random_channel(seed: u64) -> KrausChannel {
    let mut rng = StdRng::seed_from_u64(seed);
    let strength = rng.gen_range(0.01..0.12);
    match rng.gen_range(0..4u32) {
        0 => KrausChannel::amplitude_damping(strength),
        1 => KrausChannel::phase_damping(strength),
        2 => KrausChannel::depolarizing(strength),
        _ => KrausChannel::dephasing(strength),
    }
}

/// All-`Z` observable over `n` qubits: every per-trajectory expectation lies
/// in `[-1, 1]`, so the ensemble mean of `T` trajectories deviates from the
/// exact value by more than `k/√T` with probability `≤ 2·exp(−k²/2)`
/// (Hoeffding) — the statistical bound the convergence assertions use.
fn all_z(n: usize) -> GroupedPauliSum {
    let mut sum = PauliSum::zero(n);
    sum.push(c64(1.0, 0.0), PauliString::parse(&"Z".repeat(n)).unwrap());
    GroupedPauliSum::new(&sum)
}

/// CI `noise-accuracy` gate: on a seeded 6-qubit circuit under a mixed
/// Kraus model, the trajectory ensemble's energy converges to the exact
/// density-matrix oracle within the Hoeffding bound (`5/√T` — crossing it
/// has probability < 10⁻⁵ under a correct sampler, and the run is seeded,
/// so in CI it either always passes or signals a real ensemble/oracle
/// divergence).
#[test]
fn trajectory_ensemble_converges_to_density_oracle_six_qubits() {
    let n = 6;
    let circuit = random_circuit(n, 40, 42);
    let model = NoiseModel::noiseless()
        .with_single_qubit(KrausChannel::amplitude_damping(0.03))
        .with_multi_qubit(KrausChannel::depolarizing(0.02));
    let obs = all_z(n);
    let zero = InitialState::ZeroState;

    let exact = DensityMatrixBackend::new(model.clone())
        .expectation(&zero, &circuit, &obs)
        .unwrap();
    let trajectories = 2000;
    let ensemble = TrajectoryNoise::new(model, trajectories, 777)
        .expectation(&zero, &circuit, &obs)
        .unwrap();
    let bound = 5.0 / (trajectories as f64).sqrt();
    assert!(
        (ensemble - exact).abs() < bound,
        "ensemble {ensemble} vs oracle {exact}: |Δ| = {} exceeds the \
         statistical bound {bound}",
        (ensemble - exact).abs()
    );
}

proptest! {
    // Every case here runs a full trajectory ensemble or density evolution;
    // keep the default-path case count modest (the nightly deep-fuzz job
    // scales it back up through `GHS_PROPTEST_CASES`).
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The ensemble converges to the oracle on random 2–5 qubit circuits
    /// and random channels from every built-in family, within the same
    /// Hoeffding bound.
    #[test]
    fn ensemble_matches_oracle_on_random_circuits(
        n in 2usize..=5,
        gates in 4usize..24,
        seed in 0u64..300,
    ) {
        let circuit = random_circuit(n, gates, seed);
        let model = NoiseModel::noiseless()
            .with_single_qubit(random_channel(seed ^ 0xa5))
            .with_multi_qubit(random_channel(seed ^ 0x5a));
        let obs = all_z(n);
        let zero = InitialState::ZeroState;
        let exact = DensityMatrixBackend::new(model.clone())
            .expectation(&zero, &circuit, &obs)
            .unwrap();
        let trajectories = 500;
        let ensemble = TrajectoryNoise::new(model, trajectories, seed ^ 0xfeed)
            .expectation(&zero, &circuit, &obs)
            .unwrap();
        let bound = 5.0 / (trajectories as f64).sqrt();
        prop_assert!(
            (ensemble - exact).abs() < bound,
            "n={n} gates={gates} seed={seed}: |{ensemble} - {exact}| >= {bound}"
        );
    }

    /// Zero-strength Kraus channels leave the trajectory backend
    /// **bit-identical** to the noiseless reference: the noise model is
    /// recognised as trivial structurally, so no RNG is consulted and no
    /// Kraus arithmetic touches the amplitudes.
    #[test]
    fn zero_strength_channels_are_bit_identical_to_reference(
        n in 2usize..=7,
        gates in 1usize..30,
        seed in 0u64..400,
    ) {
        let circuit = random_circuit(n, gates, seed);
        let model = NoiseModel::noiseless()
            .with_single_qubit(KrausChannel::amplitude_damping(0.0))
            .with_single_qubit(KrausChannel::depolarizing(0.0))
            .with_multi_qubit(KrausChannel::phase_damping(0.0));
        prop_assert!(model.is_noiseless());
        let zero = InitialState::ZeroState;
        let noisy = TrajectoryNoise::new(model, 5, seed).run(&zero, &circuit).unwrap();
        let reference = FusedStatevector.run(&zero, &circuit).unwrap();
        prop_assert_eq!(noisy.amplitudes(), reference.amplitudes());
    }

    /// The density oracle agrees with the pure-state simulation exactly
    /// (to round-off) when the noise model is empty, on arbitrary
    /// observables — the "oracle" really is an oracle.
    #[test]
    fn noiseless_density_oracle_matches_statevector(
        n in 2usize..=5,
        gates in 1usize..25,
        seed in 0u64..300,
    ) {
        let circuit = random_circuit(n, gates, seed);
        let sum = random_pauli_sum(n, 4, PauliSumKind::Mixed, seed ^ 0x0b5);
        let obs = GroupedPauliSum::new(&sum);
        let zero = InitialState::ZeroState;
        let dense = DensityMatrixBackend::default()
            .expectation(&zero, &circuit, &obs)
            .unwrap();
        let pure = FusedStatevector.expectation(&zero, &circuit, &obs).unwrap();
        prop_assert!((dense - pure).abs() < 1e-9, "{dense} vs {pure}");
    }

    /// ZNE exactly recovers the zero-noise energy from synthetic noise
    /// curves: linear curves under both extrapolation methods, quadratic
    /// curves under Richardson.
    #[test]
    fn zne_recovers_noiseless_energy_on_synthetic_noise(
        e0 in -2.0f64..2.0,
        slope in -0.5f64..0.5,
        curvature in -0.05f64..0.05,
    ) {
        let lambdas = [1.0, 3.0, 5.0];
        let linear: Vec<(f64, f64)> =
            lambdas.iter().map(|&l| (l, e0 + slope * l)).collect();
        let quadratic: Vec<(f64, f64)> = lambdas
            .iter()
            .map(|&l| (l, e0 + slope * l + curvature * l * l))
            .collect();
        for method in [ExtrapolationMethod::Linear, ExtrapolationMethod::Richardson] {
            let got = extrapolate_to_zero(&linear, method);
            prop_assert!((got - e0).abs() < 1e-9, "{method:?}: {got} vs {e0}");
        }
        let got = extrapolate_to_zero(&quadratic, ExtrapolationMethod::Richardson);
        prop_assert!((got - e0).abs() < 1e-9, "Richardson on quadratic: {got} vs {e0}");
    }
}

/// Non-trace-preserving Kraus sets are rejected at construction with the
/// typed deviation, and valid sets (including over-complete ones) pass.
#[test]
fn cptp_violations_are_rejected() {
    // Two scaled identities summing K†K to 1.25·I: not a channel.
    let bad = vec![
        CMatrix::identity(2).scale(c64(1.0, 0.0)),
        CMatrix::identity(2).scale(c64(0.5, 0.0)),
    ];
    match KrausChannel::from_kraus(bad) {
        Err(KrausError::NotTracePreserving { deviation }) => assert!(deviation > 0.2),
        other => panic!("expected a CPTP rejection, got {other:?}"),
    }
    // Empty and wrong-shape sets get their own typed errors.
    assert!(matches!(
        KrausChannel::from_kraus(vec![]),
        Err(KrausError::Empty)
    ));
    assert!(matches!(
        KrausChannel::from_kraus(vec![CMatrix::identity(4)]),
        Err(KrausError::NotSingleQubit { .. })
    ));
    // A legitimate hand-written set is accepted and normalises to a usable
    // channel.
    let gamma: f64 = 0.3;
    let k0 = CMatrix::from_rows(&[
        &[c64(1.0, 0.0), c64(0.0, 0.0)],
        &[c64(0.0, 0.0), c64((1.0 - gamma).sqrt(), 0.0)],
    ]);
    let k1 = CMatrix::from_rows(&[
        &[c64(0.0, 0.0), c64(gamma.sqrt(), 0.0)],
        &[c64(0.0, 0.0), c64(0.0, 0.0)],
    ]);
    let channel = KrausChannel::from_kraus(vec![k0, k1]).unwrap();
    assert_eq!(channel.ops().len(), 2);
}

/// End-to-end acceptance criterion on the real workload: ZNE through the
/// exact density oracle is strictly closer to the noiseless H₂ energy than
/// the unmitigated estimate at every nonzero depolarizing strength.
#[test]
fn zne_strictly_improves_noisy_h2_energy() {
    let model = h2_sto3g();
    let opts = DirectOptions::linear();
    let pool = uccsd_pool(&model);
    // Near-optimal fixed angles (the example optimises these; the contract
    // here only needs a non-trivial ansatz state).
    let thetas = vec![0.1; pool.len()];
    let circuit = uccsd_circuit(&model, &pool, &thetas, &opts);
    let observable = model.grouped_observable();
    let zero = InitialState::ZeroState;
    let ideal = FusedStatevector
        .expectation(&zero, &circuit, &observable)
        .unwrap();
    for p in [0.002, 0.01, 0.03] {
        let density = DensityMatrixBackend::new(NoiseModel::depolarizing(p));
        let result = zero_noise_extrapolation(
            &density,
            &zero,
            &circuit,
            &observable,
            &[1, 3, 5],
            ExtrapolationMethod::Richardson,
        )
        .unwrap();
        let raw_err = (result.raw() - ideal).abs();
        let mitigated_err = (result.mitigated - ideal).abs();
        assert!(
            mitigated_err < raw_err,
            "p={p}: mitigated error {mitigated_err} not below raw {raw_err}"
        );
    }
}

/// Readout mitigation round-trip: a synthetic confusion matrix applied to a
/// known distribution is exactly undone by the inversion, and calibration on
/// a noiseless backend is the identity.
#[test]
fn readout_mitigation_inverts_known_confusion() {
    let cal = ReadoutCalibration::from_confusion(
        2,
        vec![
            0.90, 0.05, 0.04, 0.01, //
            0.05, 0.88, 0.02, 0.04, //
            0.03, 0.02, 0.91, 0.05, //
            0.02, 0.05, 0.03, 0.90,
        ],
    );
    let truth = [0.4, 0.3, 0.2, 0.1];
    let mut observed = [0.0f64; 4];
    for i in 0..4 {
        for j in 0..4 {
            observed[i] += cal.confusion(i, j) * truth[j];
        }
    }
    let recovered = cal.mitigate_counts(&observed);
    for (r, t) in recovered.iter().zip(truth.iter()) {
        assert!((r - t).abs() < 1e-10, "{recovered:?} vs {truth:?}");
    }
    let identity = ReadoutCalibration::calibrate(&FusedStatevector, 2, 32, 1).unwrap();
    for i in 0..4 {
        assert!((identity.confusion(i, i) - 1.0).abs() < 1e-12);
    }
}

/// The service's mitigated-expectation jobs are deterministic across
/// repeated submissions and agree with the direct mitigation call.
#[test]
fn service_mitigated_jobs_are_deterministic() {
    let mut circuit = Circuit::new(2);
    circuit.h(0).cx(0, 1).rz(1, 0.4);
    let mut sum = PauliSum::zero(2);
    sum.push(c64(1.0, 0.0), PauliString::parse("ZZ").unwrap());
    let observable = Arc::new(sum);
    let backend = gate_efficient_hs::core::BackendSpec::Density {
        model: NoiseModel::depolarizing(0.01),
    };

    let service = Service::new(ServiceConfig::serial());
    let spec = JobSpec::mitigated_expectation(circuit.clone(), observable.clone())
        .on_backend(backend.clone());
    let results = service.run_batch(&[spec.clone(), spec]).unwrap();
    assert_eq!(results[0].output, results[1].output);
    let JobOutput::MitigatedExpectation { mitigated, raw, .. } = results[0].output else {
        panic!("wrong output kind: {:?}", results[0].output);
    };
    let direct = zero_noise_extrapolation(
        &DensityMatrixBackend::new(NoiseModel::depolarizing(0.01)),
        &InitialState::ZeroState,
        &circuit,
        &GroupedPauliSum::new(&observable),
        &[1, 3, 5],
        ExtrapolationMethod::Richardson,
    )
    .unwrap();
    assert_eq!(mitigated, direct.mitigated, "service must be bit-identical");
    assert_eq!(raw, direct.raw());
}
