//! Gradient-engine property tests — the acceptance criteria of the adjoint
//! subsystem:
//!
//! * adjoint ≡ parameter-shift ≡ central finite differences to ≤1e-8 on
//!   random parameterized circuits (2–10 qubits, mixed rotation gate kinds
//!   including keyed phases and multi-controlled rotations), across the
//!   [`FusedStatevector`] and [`ReferenceStatevector`] backends;
//! * a zero-strength [`PauliNoise`] backend (whose gradient path is the
//!   parameter-shift fallback) agrees with the reference backend's adjoint
//!   gradient;
//! * in-place rebinding (`bind_into`) and the cached-fusion-plan execution
//!   path are exact against fresh construction;
//! * gradients are deterministic: identical bit patterns across repeated
//!   evaluations.
//!
//! Circuits come from the shared seeded testkit
//! (`ghs_statevector::testkit::random_parameterized_circuit`), so a failure
//! reported here replays everywhere from its `(shape, seed)` line. The
//! nightly CI job re-runs this suite with `GHS_PROPTEST_CASES=2048`.

use gate_efficient_hs::circuit::Circuit;
use gate_efficient_hs::core::backend::{
    parameter_shift_gradient, Backend, FusedStatevector, InitialState, PauliNoise,
    ReferenceStatevector,
};
use gate_efficient_hs::statevector::testkit::{
    random_parameterized_circuit, random_pauli_sum, PauliSumKind,
};
use gate_efficient_hs::statevector::{adjoint_gradient, GroupedPauliSum, StateVector};
use proptest::prelude::*;

/// Acceptance tolerance of the ISSUE: adjoint ≡ shift ≡ finite differences.
const GRAD_TOL: f64 = 1e-8;

/// Central finite-difference step: small enough that the `h²·E‴/6`
/// truncation stays below [`GRAD_TOL`] for the testkit's bounded affine
/// scales, large enough that the `ε/2h` cancellation noise does too.
const FD_STEP: f64 = 3e-5;

fn seeded_params(num_params: usize, seed: u64) -> Vec<f64> {
    // Deterministic, irrational-ish probe point away from symmetry axes.
    (0..num_params)
        .map(|k| 0.21 + 0.137 * k as f64 + 0.011 * (seed % 7) as f64)
        .collect()
}

fn central_differences(
    backend: &dyn Backend,
    circuit: &gate_efficient_hs::circuit::ParameterizedCircuit,
    params: &[f64],
    observable: &GroupedPauliSum,
) -> Vec<f64> {
    let zero = InitialState::ZeroState;
    let mut scratch = Circuit::new(0);
    let mut energy = |p: &[f64]| {
        circuit.bind_into(p, &mut scratch);
        backend
            .expectation(&zero, &scratch, observable)
            .expect("dense backends evaluate random circuits")
    };
    (0..params.len())
        .map(|k| {
            let mut plus = params.to_vec();
            plus[k] += FD_STEP;
            let mut minus = params.to_vec();
            minus[k] -= FD_STEP;
            (energy(&plus) - energy(&minus)) / (2.0 * FD_STEP)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Acceptance criterion: adjoint ≡ parameter-shift ≡ central finite
    /// differences to ≤1e-8 on random parameterized circuits, on both exact
    /// statevector backends.
    #[test]
    fn adjoint_equals_shift_equals_finite_differences(
        n in 2usize..=10,
        gates in 4usize..28,
        num_params in 1usize..=6,
        seed in 0u64..5_000,
    ) {
        let pc = random_parameterized_circuit(n, gates, num_params, seed);
        let sum = random_pauli_sum(n, 6, PauliSumKind::Mixed, seed ^ 0x0b5e55ed);
        let observable = GroupedPauliSum::new(&sum);
        let params = seeded_params(num_params, seed);
        let zero = InitialState::ZeroState;

        let backends: [&dyn Backend; 2] = [&FusedStatevector, &ReferenceStatevector];
        for backend in backends {
            let (e_adj, g_adj) =
                backend.expectation_gradient(&zero, &pc, &params, &observable).unwrap();
            let (e_shift, g_shift) =
                parameter_shift_gradient(backend, &zero, &pc, &params, &observable).unwrap();
            prop_assert!(
                (e_adj - e_shift).abs() < GRAD_TOL,
                "{}: energy {e_adj} vs {e_shift}", backend.name()
            );
            let fd = central_differences(backend, &pc, &params, &observable);
            for k in 0..num_params {
                prop_assert!(
                    (g_adj[k] - g_shift[k]).abs() < GRAD_TOL,
                    "{} component {k}: adjoint {} vs shift {} (n={n}, gates={gates}, seed={seed})",
                    backend.name(), g_adj[k], g_shift[k]
                );
                prop_assert!(
                    (g_adj[k] - fd[k]).abs() < GRAD_TOL,
                    "{} component {k}: adjoint {} vs fd {} (n={n}, gates={gates}, seed={seed})",
                    backend.name(), g_adj[k], fd[k]
                );
            }
        }
    }

    /// The two exact backends' adjoint gradients agree with each other to
    /// machine-level tolerance (their forward paths differ: fused kernels
    /// vs per-gate sweeps).
    #[test]
    fn fused_and_reference_gradients_agree(
        n in 2usize..=10,
        gates in 4usize..40,
        num_params in 1usize..=8,
        seed in 0u64..5_000,
    ) {
        let pc = random_parameterized_circuit(n, gates, num_params, seed);
        let sum = random_pauli_sum(n, 8, PauliSumKind::Mixed, seed ^ 0xf00d);
        let observable = GroupedPauliSum::new(&sum);
        let params = seeded_params(num_params, seed);
        let zero = InitialState::ZeroState;
        let (e_f, g_f) = FusedStatevector
            .expectation_gradient(&zero, &pc, &params, &observable)
            .unwrap();
        let (e_r, g_r) = ReferenceStatevector
            .expectation_gradient(&zero, &pc, &params, &observable)
            .unwrap();
        prop_assert!((e_f - e_r).abs() < 1e-11);
        for k in 0..num_params {
            prop_assert!(
                (g_f[k] - g_r[k]).abs() < 1e-10,
                "component {k}: fused {} vs reference {}", g_f[k], g_r[k]
            );
        }
    }

    /// A zero-strength noise backend (parameter-shift fallback, RNG-free at
    /// zero noise) reproduces the reference backend's adjoint gradient.
    #[test]
    fn zero_noise_gradient_matches_reference(
        n in 2usize..=6,
        gates in 4usize..16,
        num_params in 1usize..=4,
        seed in 0u64..2_000,
    ) {
        let pc = random_parameterized_circuit(n, gates, num_params, seed);
        let sum = random_pauli_sum(n, 5, PauliSumKind::Mixed, seed ^ 0x9071e);
        let observable = GroupedPauliSum::new(&sum);
        let params = seeded_params(num_params, seed);
        let zero = InitialState::ZeroState;
        let quiet = PauliNoise::depolarizing(0.0, 3, seed);
        let (e_q, g_q) = quiet
            .expectation_gradient(&zero, &pc, &params, &observable)
            .unwrap();
        let (e_r, g_r) = ReferenceStatevector
            .expectation_gradient(&zero, &pc, &params, &observable)
            .unwrap();
        prop_assert!((e_q - e_r).abs() < GRAD_TOL);
        for k in 0..num_params {
            prop_assert!(
                (g_q[k] - g_r[k]).abs() < GRAD_TOL,
                "component {k}: quiet {} vs reference {}", g_q[k], g_r[k]
            );
        }
    }

    /// In-place rebinding and the cached fusion plan are exact: binding a
    /// scratch circuit twice and fusing through the template's plan agree
    /// with freshly-built circuits gate for gate, and the adjoint result is
    /// bit-identical across repeated evaluations (determinism contract).
    #[test]
    fn rebinding_and_plan_reuse_are_exact_and_deterministic(
        n in 2usize..=8,
        gates in 4usize..24,
        num_params in 1usize..=5,
        seed in 0u64..2_000,
    ) {
        let pc = random_parameterized_circuit(n, gates, num_params, seed);
        let sum = random_pauli_sum(n, 5, PauliSumKind::Mixed, seed ^ 0x51ab);
        let observable = GroupedPauliSum::new(&sum);
        let a = seeded_params(num_params, seed);
        let b: Vec<f64> = a.iter().map(|v| -0.5 * v + 0.3).collect();
        let mut scratch = Circuit::new(0);
        pc.bind_into(&a, &mut scratch);
        prop_assert_eq!(scratch.clone(), pc.bind(&a));
        pc.bind_into(&b, &mut scratch);
        prop_assert_eq!(scratch.clone(), pc.bind(&b));
        let planned = pc.bind_fused(&b, &mut scratch);
        prop_assert_eq!(planned, scratch.fused());

        let zero = StateVector::zero_state(n);
        let g1 = adjoint_gradient(&zero, &pc, &b, &observable);
        let g2 = adjoint_gradient(&zero, &pc, &b, &observable);
        prop_assert_eq!(g1.energy.to_bits(), g2.energy.to_bits());
        for k in 0..num_params {
            prop_assert_eq!(g1.gradient[k].to_bits(), g2.gradient[k].to_bits());
        }
    }
}
