//! Job-service integration tests — the acceptance criteria of the batched
//! service layer:
//!
//! * the structural plan-cache key is **angle-invariant**: rebinding a
//!   template never changes it, while any gate/support/topology edit does
//!   (random circuits from the shared seeded testkit);
//! * cached execution is **exact**: every job kind returns bit-identical
//!   results to a direct call into the backend layer, warm or cold;
//! * the cache **evicts** under a small capacity bound without affecting
//!   results, and a warm re-run of a stream adds zero misses;
//! * seeded results are **scheduling-independent**: a concurrent submit
//!   storm across several OS threads and workers returns bit-identical
//!   outputs to serial single-worker execution of the same specs.
//!
//! The determinism CI matrix re-runs this suite with
//! `GHS_PARALLEL_THRESHOLD` forced to `0` and `usize::MAX` and with
//! `GHS_SHARD_COUNT` forced to 1 / 4 / 64 (the sharded backend must not
//! let the shard layout leak into any output); the nightly job re-runs it
//! with `GHS_PROPTEST_CASES=2048`.

use std::sync::Arc;

use gate_efficient_hs::circuit::Circuit;
use gate_efficient_hs::core::backend::{Backend, FusedStatevector, InitialState};
use gate_efficient_hs::service::{JobOutput, JobSpec, Service, ServiceConfig};
use gate_efficient_hs::statevector::testkit::{
    random_circuit, random_parameterized_circuit, random_pauli_sum, PauliSumKind,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Rebinding never changes the key: every binding of a template — and
    /// the template itself — hash to one structural key.
    #[test]
    fn rebinding_a_template_never_changes_the_structural_key(
        n in 2usize..=6,
        gates in 1usize..30,
        num_params in 1usize..6,
        seed in 0u64..2_000,
    ) {
        let pc = random_parameterized_circuit(n, gates, num_params, seed);
        let key = pc.structural_key();
        for binding in 0..3u64 {
            let params: Vec<f64> = (0..num_params)
                .map(|k| 0.1 + 0.37 * (binding as f64) + 0.11 * k as f64)
                .collect();
            prop_assert_eq!(pc.bind(&params).structural_key(), key);
        }
    }

    /// Any topology edit changes the key: appending a gate, dropping the
    /// last gate, and moving a gate's support are all distinguishable.
    #[test]
    fn structural_edits_always_change_the_key(
        n in 2usize..=6,
        gates in 1usize..30,
        seed in 0u64..2_000,
    ) {
        let c = random_circuit(n, gates, seed);
        let key = c.structural_key();

        let mut appended = c.clone();
        appended.h(0);
        prop_assert_ne!(appended.structural_key(), key);

        let mut widened = Circuit::new(n + 1);
        for gate in c.gates() {
            widened.push(gate.clone());
        }
        prop_assert_ne!(widened.structural_key(), key);

        let mut moved = c.clone();
        moved.h(0);
        let mut moved_other = c.clone();
        moved_other.h(1);
        prop_assert_ne!(moved.structural_key(), moved_other.structural_key());
    }

    /// Every job kind returns bit-identical results to a direct call into
    /// the backend layer, on a cold cache and on a warm one.
    #[test]
    fn service_outputs_match_direct_backend_calls(
        n in 2usize..=6,
        gates in 1usize..30,
        seed in 0u64..2_000,
    ) {
        let circuit = Arc::new(random_circuit(n, gates, seed));
        let observable = Arc::new(random_pauli_sum(n, 6, PauliSumKind::Mixed, seed ^ 0xab));
        let template = Arc::new(random_parameterized_circuit(n, gates, 3, seed ^ 0xcd));
        let params = vec![0.3, -0.7, 1.1];

        let jobs = vec![
            JobSpec::expectation(circuit.clone(), observable.clone()),
            JobSpec::sample(circuit.clone(), 64).with_seed(seed),
            JobSpec::probabilities(circuit.clone()).starting_at(1),
            JobSpec::gradient(template.clone(), params.clone(), observable.clone()),
        ];
        for config in [ServiceConfig::serial(), ServiceConfig::default()] {
            let service = Service::new(config);
            let results = service.run_batch(&jobs).expect("valid jobs");

            let zero = InitialState::ZeroState;
            let grouped =
                gate_efficient_hs::statevector::GroupedPauliSum::new(&observable);
            let energy = FusedStatevector.expectation(&zero, &circuit, &grouped).unwrap();
            prop_assert_eq!(&results[0].output, &JobOutput::Expectation(energy));

            let shots = FusedStatevector.sample(&zero, &circuit, 64, seed).unwrap();
            prop_assert_eq!(&results[1].output, &JobOutput::Shots(shots));

            let one = InitialState::basis(1);
            let probs = FusedStatevector.probabilities(&one, &circuit).unwrap();
            prop_assert_eq!(&results[2].output, &JobOutput::Probabilities(probs));

            let (e, g) = FusedStatevector.expectation_gradient(
                &zero, &template, &params, &grouped,
            ).unwrap();
            prop_assert_eq!(
                &results[3].output,
                &JobOutput::Gradient { energy: e, gradient: g }
            );
        }
    }
}

/// Sharded-backend jobs return bit-identical outputs to fused-backend jobs
/// for every job kind, at whatever `GHS_SHARD_COUNT` the determinism matrix
/// forces, and the plan cache tracks sharding relabelings per structure.
#[test]
fn sharded_jobs_match_fused_jobs_bit_for_bit() {
    use gate_efficient_hs::core::backend::BackendSpec;
    // 10 qubits: above `FUSED_MIN_DIM`, so the fused reference path runs
    // the same fused kernels the sharded engine replays bit-for-bit.
    let circuit = Arc::new(random_circuit(10, 40, 31));
    let observable = Arc::new(random_pauli_sum(10, 6, PauliSumKind::Mixed, 32));
    let service = Service::new(ServiceConfig::default());
    let jobs = vec![
        JobSpec::sample(circuit.clone(), 128)
            .with_seed(4)
            .on_backend(BackendSpec::Sharded),
        JobSpec::sample(circuit.clone(), 128).with_seed(4),
        JobSpec::expectation(circuit.clone(), observable.clone()).on_backend(BackendSpec::Sharded),
        JobSpec::expectation(circuit.clone(), observable.clone()),
        JobSpec::probabilities(circuit.clone())
            .starting_at(3)
            .on_backend(BackendSpec::Sharded),
        JobSpec::probabilities(circuit.clone()).starting_at(3),
    ];
    let results = service.run_batch(&jobs).expect("valid jobs");
    assert_eq!(results[0].output, results[1].output, "sample outputs");
    assert_eq!(results[2].output, results[3].output, "expectation outputs");
    assert_eq!(results[4].output, results[5].output, "probability outputs");
    // The sharded jobs resolved a relabeling through the plan cache: one
    // miss for the structure, hits on re-use.
    let stats = service.cache_stats();
    assert!(
        stats.relabeling_misses > 0,
        "no relabeling traffic: {stats:?}"
    );
}

/// A capacity-2 plan cache cycling through three topologies must evict —
/// and still return the same answers as an unbounded cache.
#[test]
fn eviction_under_a_small_capacity_bound_preserves_results() {
    let circuits: Vec<Arc<Circuit>> = (0..3)
        .map(|k| Arc::new(random_circuit(5, 12 + 4 * k, 90 + k as u64)))
        .collect();
    let jobs: Vec<JobSpec> = (0..4)
        .flat_map(|round| {
            circuits
                .iter()
                .map(move |c| JobSpec::sample(c.clone(), 32).with_seed(round))
        })
        .collect();

    let small = Service::new(ServiceConfig {
        cache_capacity: 2,
        ..ServiceConfig::default()
    });
    let large = Service::new(ServiceConfig::default());
    let a = small.run_batch(&jobs).expect("valid jobs");
    let b = large.run_batch(&jobs).expect("valid jobs");
    assert_eq!(
        a.iter().map(|r| &r.output).collect::<Vec<_>>(),
        b.iter().map(|r| &r.output).collect::<Vec<_>>()
    );
    let stats = small.cache_stats();
    assert!(
        stats.evictions > 0,
        "three topologies through a capacity-2 cache must evict, got {stats:?}"
    );
    assert_eq!(large.cache_stats().evictions, 0);
}

/// A warm service re-running the exact same stream adds zero cache misses:
/// every plan, prepared observable and sampling distribution is served from
/// the cache.
#[test]
fn warm_rerun_adds_zero_cache_misses() {
    // 10 qubits: at the fusion crossover, so the plan cache is in play
    // (below it the service applies gates directly and caches only
    // sampling distributions).
    let circuit = Arc::new(random_circuit(10, 20, 7));
    let observable = Arc::new(random_pauli_sum(10, 5, PauliSumKind::Mixed, 8));
    let jobs = vec![
        JobSpec::expectation(circuit.clone(), observable.clone()),
        JobSpec::sample(circuit.clone(), 128).with_seed(1),
        JobSpec::sample(circuit.clone(), 128).with_seed(2),
    ];
    let service = Service::new(ServiceConfig::default());
    service.run_batch(&jobs).expect("valid jobs");
    let first = service.cache_stats();
    service.run_batch(&jobs).expect("valid jobs");
    let second = service.cache_stats();
    assert_eq!(second.plan_misses, first.plan_misses);
    assert_eq!(second.observable_misses, first.observable_misses);
    assert_eq!(second.distribution_misses, first.distribution_misses);
    assert!(second.plan_hits > first.plan_hits);
    assert!(second.distribution_hits > first.distribution_hits);
}

/// The mixed spec stream the storm test pushes through the service: same
/// shape as a variational frontend — shared templates rebound per job,
/// repeated sampling circuits under fresh seeds, a handful of gradients.
fn storm_stream() -> Vec<JobSpec> {
    let circuit = Arc::new(random_circuit(6, 24, 11));
    let observable = Arc::new(random_pauli_sum(6, 6, PauliSumKind::Mixed, 12));
    let template = Arc::new(random_parameterized_circuit(6, 24, 4, 13));
    let mut jobs = Vec::new();
    for k in 0..12u64 {
        jobs.push(JobSpec::sample(circuit.clone(), 96).with_seed(k));
        let params: Vec<f64> = (0..4)
            .map(|p| 0.2 + 0.05 * (k as f64) + 0.3 * p as f64)
            .collect();
        jobs.push(JobSpec::expectation(
            (template.clone(), params.clone()),
            observable.clone(),
        ));
        if k % 4 == 0 {
            jobs.push(JobSpec::gradient(
                template.clone(),
                params,
                observable.clone(),
            ));
        }
    }
    jobs
}

/// Concurrent submit storm: four OS threads hammering a four-worker service
/// from distinct fairness lanes produce bit-identical outputs to serial
/// single-worker execution of the same specs — results are a pure function
/// of `(spec, seed)`, never of scheduling.
#[test]
fn concurrent_submit_storm_is_bit_identical_to_serial_execution() {
    let jobs = storm_stream();
    let serial = Service::new(ServiceConfig::serial())
        .run_batch(&jobs)
        .expect("valid stream");

    let storm = Service::new(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    });
    let chunk = jobs.len().div_ceil(4);
    let mut outputs: Vec<Option<JobOutput>> = vec![None; jobs.len()];
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .chunks(chunk)
            .enumerate()
            .map(|(lane, slice)| {
                let storm = &storm;
                scope.spawn(move || {
                    let ids: Vec<_> = slice
                        .iter()
                        .map(|spec| {
                            storm
                                .submit(spec.clone().from_submitter(lane))
                                .expect("valid spec")
                        })
                        .collect();
                    ids.into_iter()
                        .map(|id| storm.wait(id).output)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for (lane, handle) in handles.into_iter().enumerate() {
            for (offset, output) in handle.join().expect("no panic").into_iter().enumerate() {
                outputs[lane * chunk + offset] = Some(output);
            }
        }
    });

    for (k, (reference, stormed)) in serial.iter().zip(&outputs).enumerate() {
        assert_eq!(
            Some(&reference.output),
            stormed.as_ref(),
            "job {k} differs between serial and storm execution"
        );
    }
}
