//! Property-based tests (proptest) over the core invariants of the library:
//! exactness of the direct construction for arbitrary SCB terms, Pauli-sum
//! round trips, HUBO formalism conversions, LCU block sums and Cayley-table
//! closure. Random circuits and the kernel-zoo circuit come from the shared
//! seeded testkit (`ghs_statevector::testkit`).

use gate_efficient_hs::core::{direct_term_circuit, term_lcu, DirectOptions};
use gate_efficient_hs::math::{c64, expm_minus_i_theta, CMatrix, Complex64};
use gate_efficient_hs::operators::{HermitianTerm, PauliSum, ScbOp, ScbString};
use gate_efficient_hs::statevector::testkit::{kernel_zoo_circuit, random_circuit};
use gate_efficient_hs::statevector::{circuit_unitary, StateVector};
use proptest::prelude::*;

const TOL: f64 = 1e-8;

/// Equivalence tolerance for the fused-vs-per-gate engine comparison.
const FUSION_TOL: f64 = 1e-12;

fn arb_scb_op() -> impl Strategy<Value = ScbOp> {
    prop_oneof![
        Just(ScbOp::I),
        Just(ScbOp::X),
        Just(ScbOp::Y),
        Just(ScbOp::Z),
        Just(ScbOp::N),
        Just(ScbOp::M),
        Just(ScbOp::Sigma),
        Just(ScbOp::SigmaDag),
    ]
}

fn arb_string(max_qubits: usize) -> impl Strategy<Value = ScbString> {
    prop::collection::vec(arb_scb_op(), 1..=max_qubits).prop_map(ScbString::new)
}

fn arb_term(max_qubits: usize) -> impl Strategy<Value = HermitianTerm> {
    (arb_string(max_qubits), -1.0f64..1.0, -1.0f64..1.0).prop_map(|(s, re, im)| {
        if s.is_hermitian() {
            HermitianTerm::bare(re, s)
        } else {
            HermitianTerm::paired(c64(re, im), s)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The flagship invariant: for every SCB term the direct circuit equals
    /// the exact exponential of the term.
    #[test]
    fn direct_circuit_is_exact_for_arbitrary_terms(
        term in arb_term(5),
        theta in -2.0f64..2.0,
    ) {
        let circuit = direct_term_circuit(&term, theta, &DirectOptions::linear());
        let u = circuit_unitary(&circuit);
        let expect = expm_minus_i_theta(&term.matrix(), theta);
        prop_assert!(u.approx_eq(&expect, TOL), "distance {}", u.distance(&expect));
    }

    /// The pyramidal-ladder variant implements the same unitary.
    #[test]
    fn pyramidal_and_linear_direct_circuits_agree(
        term in arb_term(5),
        theta in -1.5f64..1.5,
    ) {
        let lin = circuit_unitary(&direct_term_circuit(&term, theta, &DirectOptions::linear()));
        let pyr = circuit_unitary(&direct_term_circuit(&term, theta, &DirectOptions::pyramidal()));
        prop_assert!(lin.approx_eq(&pyr, TOL));
    }

    /// Pauli expansion of a term reproduces its matrix, and its fragment
    /// count never exceeds 2^(number of non-Pauli factors).
    #[test]
    fn pauli_expansion_round_trip(term in arb_term(5)) {
        let sum = term.to_pauli_sum();
        prop_assert!(sum.matrix().approx_eq(&term.matrix(), 1e-7));
        prop_assert!(sum.is_hermitian(1e-8));
        let bound = term.string.pauli_fragment_count() * if term.add_hc { 2 } else { 1 };
        prop_assert!(sum.num_terms() <= bound);
    }

    /// The per-term LCU (block-encoding building block) sums back to the
    /// term with at most six unitaries.
    #[test]
    fn term_lcu_sums_to_term(term in arb_term(4)) {
        let lcu = term_lcu(&term);
        prop_assert!(lcu.len() <= 6);
        let n = term.num_qubits();
        let dim = 1usize << n;
        let mut acc = CMatrix::zeros(dim, dim);
        for (w, u) in &lcu {
            let um = circuit_unitary(&u.circuit(n, 0, &[], gate_efficient_hs::circuit::LadderStyle::Linear));
            prop_assert!(um.is_unitary(1e-8));
            acc.add_scaled(&um, c64(*w, 0.0));
        }
        prop_assert!(acc.approx_eq(&term.matrix(), 1e-7), "distance {}", acc.distance(&term.matrix()));
    }

    /// Pauli decomposition of random Hermitian matrices round-trips.
    #[test]
    fn pauli_decomposition_of_random_hermitian(seed in 0u64..1000) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 2 + (seed % 2) as usize;
        let dim = 1usize << n;
        let mut m = CMatrix::zeros(dim, dim);
        for r in 0..dim {
            for c in r..dim {
                let v = if r == c {
                    c64(rng.gen_range(-1.0..1.0), 0.0)
                } else {
                    c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
                };
                m[(r, c)] = v;
                m[(c, r)] = v.conj();
            }
        }
        let sum = PauliSum::from_matrix(&m, 1e-12);
        prop_assert!(sum.matrix().approx_eq(&m, 1e-8));
        prop_assert!(sum.is_hermitian(1e-8));
    }

    /// Cayley-table closure: products of random SCB strings are single
    /// weighted strings whose matrix equals the matrix product.
    #[test]
    fn scb_string_products_are_closed(
        a in arb_string(4),
        b in arb_string(4),
    ) {
        let n = a.num_qubits().min(b.num_qubits());
        let a = ScbString::new(a.ops()[..n].to_vec());
        let b = ScbString::new(b.ops()[..n].to_vec());
        let direct = a.matrix().matmul(&b.matrix());
        match a.product(&b) {
            None => prop_assert!(direct.max_norm() < 1e-12),
            Some((coeff, s)) => {
                prop_assert!(direct.approx_eq(&s.matrix().scale(coeff), 1e-9));
            }
        }
    }

    /// HUBO ↔ Ising conversions preserve every assignment's cost.
    #[test]
    fn hubo_ising_cost_preservation(
        weights in prop::collection::vec(-2.0f64..2.0, 1..5),
        seed in 0u64..500,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let num_vars = 5usize;
        let mut p = gate_efficient_hs::hubo::HuboProblem::new(num_vars);
        for &w in &weights {
            let order = rng.gen_range(1..=3usize);
            let vars: Vec<usize> = (0..order).map(|_| rng.gen_range(0..num_vars)).collect();
            p.add_term(w, &vars);
        }
        let ising = p.to_ising();
        let back = ising.to_hubo();
        for x in 0..(1usize << num_vars) {
            prop_assert!((p.evaluate(x) - ising.evaluate(x)).abs() < 1e-9);
            prop_assert!((p.evaluate(x) - back.evaluate(x)).abs() < 1e-9);
        }
    }

    /// Hermitian terms have Hermitian matrices, and their exponentials are
    /// unitary (norm preservation of the simulator path).
    #[test]
    fn hermitian_terms_exponentiate_to_unitaries(term in arb_term(4), theta in -1.0f64..1.0) {
        prop_assert!(term.matrix().is_hermitian(1e-9));
        let u = circuit_unitary(&direct_term_circuit(&term, theta, &DirectOptions::linear()));
        prop_assert!(u.is_unitary(1e-8));
        let _ = Complex64::ONE;
    }

    /// The fused execution engine is exactly equivalent to the per-gate
    /// oracle on random circuits over 2–10 qubits (all gate variants,
    /// random control polarities, random initial states).
    #[test]
    fn fused_engine_matches_per_gate_oracle(
        n in 2usize..=10,
        gates in 1usize..60,
        seed in 0u64..10_000,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let c = random_circuit(n, gates, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
        let s0 = StateVector::random_state(n, &mut rng);
        let mut fused = s0.clone();
        // apply_fused rather than run_fused: exercise the engine itself even
        // below the run_fused size crossover.
        fused.apply_fused(&c.fused());
        let mut unfused = s0.clone();
        unfused.run_unfused(&c);
        let d = fused.distance(&unfused);
        prop_assert!(d < FUSION_TOL, "distance {d} on n={n}, gates={gates}, seed={seed}");
        // The fused path must preserve the norm as well.
        prop_assert!((fused.norm() - 1.0).abs() < 1e-10);
    }

    /// Every specialized kernel (diagonal, permutation, block-sparse, dense,
    /// controlled-single, wide passthrough) agrees with the oracle, across
    /// register sizes and random initial states.
    #[test]
    fn fused_kernel_zoo_matches_per_gate_oracle(
        n in 4usize..=10,
        seed in 0u64..1000,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let c = kernel_zoo_circuit(n);
        let fused_form = c.fused();
        // The zoo circuit must genuinely fuse (otherwise it tests nothing).
        prop_assert!(fused_form.fusion_ratio() > 1.5);
        let mut rng = StdRng::seed_from_u64(seed);
        let s0 = StateVector::random_state(n, &mut rng);
        let mut fused = s0.clone();
        fused.apply_fused(&fused_form);
        let mut unfused = s0.clone();
        unfused.run_unfused(&c);
        let d = fused.distance(&unfused);
        prop_assert!(d < FUSION_TOL, "distance {d} on n={n}, seed={seed}");
    }

    /// Fusing then daggering commutes with simulation: applying a circuit
    /// and its dagger through the fused engine returns the initial state.
    #[test]
    fn fused_dagger_round_trip(
        n in 2usize..=8,
        gates in 1usize..40,
        seed in 0u64..1000,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let c = random_circuit(n, gates, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31));
        let s0 = StateVector::random_state(n, &mut rng);
        let mut s = s0.clone();
        s.apply_fused(&c.fused());
        s.apply_fused(&c.dagger().fused());
        prop_assert!(s.distance(&s0) < 1e-10);
    }
}
