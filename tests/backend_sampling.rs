//! Backend-layer property tests: the dense execution backends implement the
//! same trait contract, the fused and reference engines agree to 1e-12 on
//! random circuits, the batched shot engine converges to `|amplitude|²`
//! identically across backends, its seeded output is bit-identical across
//! runs, the sharded engine matches the fused one bit-for-bit at whatever
//! `GHS_SHARD_COUNT` the determinism CI matrix forces, and the stochastic
//! noise backend at zero strength collapses to the noiseless simulation.
//! Random circuits come from the shared seeded testkit
//! (`ghs_statevector::testkit`).

use gate_efficient_hs::circuit::Circuit;
use gate_efficient_hs::core::backend::{
    backend_by_name, Backend, BackendError, FusedStatevector, InitialState, PauliNoise,
    ReferenceStatevector,
};
use gate_efficient_hs::statevector::testkit::random_circuit;
use gate_efficient_hs::statevector::StateVector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Equivalence tolerance between exact backends.
const BACKEND_TOL: f64 = 1e-12;

proptest! {
    /// Acceptance criterion: the fused and reference backends agree to
    /// 1e-12 on random 2–10 qubit circuits.
    #[test]
    fn fused_and_reference_backends_agree(
        n in 2usize..=10,
        gates in 1usize..40,
        seed in 0u64..5_000,
    ) {
        let c = random_circuit(n, gates, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let s0 = InitialState::from(StateVector::random_state(n, &mut rng));
        let f = FusedStatevector.run(&s0, &c).unwrap();
        let r = ReferenceStatevector.run(&s0, &c).unwrap();
        let d = f.distance(&r);
        prop_assert!(d < BACKEND_TOL, "distance {d} on n={n}, gates={gates}, seed={seed}");
    }

    /// The noise backend at zero strength agrees with the noiseless
    /// backends to 1e-12 (it is RNG-free there, so this holds per
    /// trajectory, not just on average).
    #[test]
    fn zero_noise_backend_matches_noiseless(
        n in 2usize..=8,
        gates in 1usize..30,
        seed in 0u64..2_000,
    ) {
        let c = random_circuit(n, gates, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let s0 = InitialState::from(StateVector::random_state(n, &mut rng));
        let quiet = PauliNoise {
            depolarizing: 0.0,
            dephasing: 0.0,
            trajectories: 3,
            seed,
        };
        let q = quiet.run(&s0, &c).unwrap();
        let f = FusedStatevector.run(&s0, &c).unwrap();
        prop_assert!(q.distance(&f) < BACKEND_TOL);
        // Ensemble probabilities collapse to the pure-state ones as well.
        let probs = quiet.probabilities(&s0, &c).unwrap();
        for (p, amp) in probs.iter().zip(f.amplitudes()) {
            prop_assert!((p - amp.norm_sqr()).abs() < BACKEND_TOL);
        }
    }
}

#[test]
fn sample_frequencies_converge_identically_across_backends() {
    // One moderately entangling 6-qubit circuit, enough shots that the
    // per-outcome standard error (≤ ~1.1e-3) sits far below the tolerance.
    let c = random_circuit(6, 40, 99);
    let zero = InitialState::ZeroState;
    let probs = FusedStatevector.probabilities(&zero, &c).unwrap();
    let shots = 200_000;
    let tol = 0.01;
    let mut freq_tables: Vec<Vec<f64>> = Vec::new();
    for backend in [&FusedStatevector as &dyn Backend, &ReferenceStatevector] {
        let samples = backend.sample(&zero, &c, shots, 12_345).unwrap();
        // Bit-identical across runs under the fixed seed.
        assert_eq!(samples, backend.sample(&zero, &c, shots, 12_345).unwrap());
        let mut counts = vec![0usize; probs.len()];
        for &s in &samples {
            counts[s] += 1;
        }
        let freqs: Vec<f64> = counts.iter().map(|&k| k as f64 / shots as f64).collect();
        for (i, (f, p)) in freqs.iter().zip(&probs).enumerate() {
            assert!(
                (f - p).abs() < tol,
                "{}: outcome {i} frequency {f} vs probability {p}",
                backend.name()
            );
        }
        freq_tables.push(freqs);
    }
    // The two exact backends converge to the same table.
    for (i, (a, b)) in freq_tables[0].iter().zip(&freq_tables[1]).enumerate() {
        assert!(
            (a - b).abs() < tol,
            "outcome {i}: fused {a} vs reference {b}"
        );
    }
}

#[test]
fn batched_shots_are_prefix_stable_and_seed_sensitive() {
    let c = random_circuit(5, 25, 7);
    let zero = InitialState::ZeroState;
    let long = FusedStatevector.sample(&zero, &c, 6000, 1).unwrap();
    // A shorter batch under the same seed is a prefix of the longer one
    // (chunk streams depend only on (seed, chunk index)).
    let short = FusedStatevector.sample(&zero, &c, 4096, 1).unwrap();
    assert_eq!(&long[..4096], &short[..]);
    // A different seed gives a different stream.
    assert_ne!(long, FusedStatevector.sample(&zero, &c, 6000, 2).unwrap());
}

#[test]
fn noisy_sampling_is_deterministic_and_normalised() {
    let c = random_circuit(5, 30, 13);
    let zero = InitialState::ZeroState;
    let noisy = PauliNoise {
        depolarizing: 0.03,
        dephasing: 0.01,
        trajectories: 8,
        seed: 42,
    };
    let probs = noisy.probabilities(&zero, &c).unwrap();
    assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    assert_eq!(
        noisy.sample(&zero, &c, 3000, 5).unwrap(),
        noisy.sample(&zero, &c, 3000, 5).unwrap()
    );
}

#[test]
fn sharded_backend_matches_fused_at_any_forced_shard_count() {
    // The determinism CI matrix re-runs this suite with `GHS_SHARD_COUNT`
    // forced to 1 / 4 / 64: the sharded engine must produce byte-identical
    // states and seeded sample streams at every setting, so this test's
    // output never varies across the matrix legs. 10 qubits: above
    // `FUSED_MIN_DIM`, so the fused backend runs the same fused kernels the
    // sharded engine replays (below it, it falls back to per-gate sweeps
    // whose round-off differs in the last bits).
    let c = random_circuit(10, 50, 21);
    let s0 = InitialState::basis(5);
    let sharded = backend_by_name("sharded").expect("sharded backend registered");
    let flat = FusedStatevector.run(&s0, &c).unwrap();
    let out = sharded.run(&s0, &c).unwrap();
    for i in 0..out.dim() {
        assert_eq!(out.amplitude(i), flat.amplitude(i), "amplitude {i}");
    }
    assert_eq!(
        sharded.sample(&s0, &c, 500, 11).unwrap(),
        FusedStatevector.sample(&s0, &c, 500, 11).unwrap()
    );
}

#[test]
fn backend_registry_resolves_every_documented_name() {
    for name in ["fused", "reference", "noisy", "sharded", "stabilizer"] {
        let backend = backend_by_name(name).expect("documented backend name");
        // Smoke: every registry entry can run a circuit end to end.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let shots = backend.sample(&InitialState::ZeroState, &c, 64, 0).unwrap();
        assert_eq!(shots.len(), 64);
    }
    assert_eq!(
        backend_by_name("tensor-network").err(),
        Some(BackendError::UnknownName("tensor-network".into()))
    );
}
