//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment of this repository has no network access, so the
//! real rayon cannot be fetched from crates.io. This shim implements the
//! subset of rayon's API that the workspace actually uses — `par_iter_mut`
//! and `par_chunks_mut` on slices, followed by `enumerate`/`for_each` — with
//! genuine data parallelism built on [`std::thread::scope`]. Work is split
//! into one contiguous run of blocks per available core, so the hot
//! state-vector and matmul kernels still scale with hardware threads.
//!
//! Swapping the real rayon back in is a one-line change in the workspace
//! manifest; no call sites need to change.

#![warn(missing_docs)]

/// The traits that make `par_iter_mut` / `par_chunks_mut` available on
/// slices, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::ParallelSliceMut;
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `slice` into whole `block`-sized chunks, hands one contiguous run
/// of chunks to each worker thread, and calls `f(chunk_index, chunk)`.
fn run_on_blocks<T, F>(slice: &mut [T], block: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(block > 0, "chunk size must be non-zero");
    let total_blocks = slice.len().div_ceil(block);
    let threads = num_threads().min(total_blocks).max(1);
    if threads <= 1 {
        for (i, chunk) in slice.chunks_mut(block).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let blocks_per_worker = total_blocks.div_ceil(threads);
    let stride = blocks_per_worker * block;
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = slice;
        let mut first_block = 0usize;
        while !rest.is_empty() {
            let take = stride.min(rest.len());
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
            rest = tail;
            let base = first_block;
            scope.spawn(move || {
                for (i, chunk) in head.chunks_mut(block).enumerate() {
                    f(base + i, chunk);
                }
            });
            first_block += blocks_per_worker;
        }
    });
}

/// Parallel mutable element iterator, as returned by
/// [`ParallelSliceMut::par_iter_mut`].
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pairs every element with its index, like [`Iterator::enumerate`].
    pub fn enumerate(self) -> ParIterMutEnumerate<'a, T> {
        ParIterMutEnumerate { slice: self.slice }
    }

    /// Runs `f` on every element, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        self.enumerate().for_each(|(_, item)| f(item));
    }
}

/// Enumerated form of [`ParIterMut`].
pub struct ParIterMutEnumerate<'a, T> {
    slice: &'a mut [T],
}

impl<T: Send> ParIterMutEnumerate<'_, T> {
    /// Runs `f` on every `(index, element)` pair, in parallel. Indices are
    /// global positions in the original slice.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        // Group elements into cache-friendly runs so thread-spawn overhead is
        // amortised over many elements.
        let run = self.slice.len().div_ceil(num_threads()).max(1);
        run_on_blocks(self.slice, run, |block_idx, chunk| {
            let base = block_idx * run;
            for (k, item) in chunk.iter_mut().enumerate() {
                f((base + k, item));
            }
        });
    }
}

/// Parallel mutable chunk iterator, as returned by
/// [`ParallelSliceMut::par_chunks_mut`].
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its chunk index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }

    /// Runs `f` on every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated form of [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Runs `f` on every `(chunk_index, chunk)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        run_on_blocks(self.slice, self.chunk_size, |i, chunk| f((i, chunk)));
    }
}

/// Subset of rayon's `ParallelSliceMut` + `IntoParallelRefMutIterator`:
/// parallel mutable iteration over slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel equivalent of [`slice::iter_mut`].
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;

    /// Parallel equivalent of [`slice::chunks_mut`].
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_mut_visits_every_index_once() {
        let mut v = vec![0usize; 10_000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i + 1);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i + 1);
        }
    }

    #[test]
    fn par_chunks_mut_matches_sequential_chunking() {
        for len in [0usize, 1, 7, 64, 1000] {
            for block in [1usize, 3, 16, 1024] {
                let mut par = vec![0usize; len];
                par.par_chunks_mut(block)
                    .enumerate()
                    .for_each(|(ci, chunk)| {
                        for x in chunk {
                            *x = ci;
                        }
                    });
                let mut seq = vec![0usize; len];
                for (ci, chunk) in seq.chunks_mut(block).enumerate() {
                    for x in chunk {
                        *x = ci;
                    }
                }
                assert_eq!(par, seq, "len={len} block={block}");
            }
        }
    }

    #[test]
    fn for_each_without_enumerate() {
        let mut v = vec![1u64; 513];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
        v.par_chunks_mut(8).for_each(|c| c[0] = 0);
        assert_eq!(v.iter().filter(|&&x| x == 0).count(), 513usize.div_ceil(8));
    }
}
