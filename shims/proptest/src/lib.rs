//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment of this repository has no network access, so the
//! real proptest cannot be fetched from crates.io. This shim implements the
//! subset the workspace's property tests use: the [`strategy::Strategy`]
//! trait with `prop_map`, [`strategy::Just`], range and tuple strategies,
//! [`collection::vec`], [`prop_oneof!`], the [`proptest!`] test-definition
//! macro with `#![proptest_config(…)]`, and the [`prop_assert!`] family.
//!
//! Differences from the real crate: failing cases are **not shrunk** (the
//! failing case index and its deterministic seed are reported instead), and
//! case generation is seeded per test name so runs are reproducible across
//! machines. The `GHS_PROPTEST_CASES` environment variable overrides every
//! configured case count (the nightly deep-fuzz knob; see
//! [`test_runner::ProptestConfig::effective_cases`]). Swapping the real
//! proptest back in is a one-line change in the workspace manifest; test
//! sources need no changes.

#![warn(missing_docs)]

/// Strategies: composable recipes for generating test values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from this strategy.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                strategy: self,
                map: f,
            }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        strategy: S,
        map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.map)(self.strategy.new_value(rng))
        }
    }

    /// Type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Uniform choice among alternative strategies (the engine behind
    /// [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given alternatives.
        ///
        /// # Panics
        /// Panics when `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let pick = rng.gen_range(0..self.options.len());
            self.options[pick].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, usize, u64, u32, i64, i32);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Result of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Test-execution plumbing: configuration and the deterministic RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count actually run: the `GHS_PROPTEST_CASES` environment
        /// variable, when set to a positive integer, **overrides** the
        /// configured count for every property test in the process. This is
        /// the deep-fuzzing knob of the nightly CI job (e.g.
        /// `GHS_PROPTEST_CASES=2048`): the push/PR path keeps the short
        /// in-source counts, the scheduled job re-runs the same suites three
        /// orders of magnitude harder without touching any test source.
        /// Unset, empty or unparsable values fall back to the configured
        /// count. Case seeds depend only on the test name and case index, so
        /// a case that fails at 2048 replays at any count ≥ its index.
        pub fn effective_cases(&self) -> u64 {
            resolve_cases(
                std::env::var("GHS_PROPTEST_CASES").ok().as_deref(),
                self.cases,
            )
        }
    }

    /// Pure core of [`ProptestConfig::effective_cases`], separated so the
    /// override logic is testable without mutating process-global state.
    pub(crate) fn resolve_cases(env_value: Option<&str>, configured: u32) -> u64 {
        env_value
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(u64::from(configured))
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real proptest defaults to 256; this shim keeps CI short.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case generator: the stream depends only on the test
    /// name and the case index, so failures reproduce across machines.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds the generator for `case` of the named test.
        pub fn deterministic(test_name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in test_name.bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Everything a property test usually imports, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the `prop` module re-exported by proptest's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a [`proptest!`] body; on failure the current
/// case is reported (with its index and seed) instead of unwinding directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines `#[test]` functions over generated inputs, mirroring
/// `proptest::proptest!`. Supports the optional leading
/// `#![proptest_config(…)]` attribute.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!(config = ($config); $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!(
            config = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (
        config = ($config:expr);
        // `#[test]` is among the captured attributes and is re-emitted onto
        // the generated zero-argument function.
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.effective_cases() {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);
                )+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "proptest case #{case} of {} failed: {message}",
                        stringify!($name)
                    );
                }
            }
        }
        $crate::__proptest_impl!(config = ($config); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_small() -> impl Strategy<Value = u64> {
        prop_oneof![Just(1u64), Just(2), Just(3)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -1.0f64..1.0, n in 0u64..100) {
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!(n < 100);
        }

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(0u64..10, 1..=5usize)) {
            prop_assert!((1..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map_compose(x in arb_small().prop_map(|v| v * 10)) {
            prop_assert!(x == 10 || x == 20 || x == 30);
            prop_assert_eq!(x % 10, 0);
        }

        #[test]
        fn tuples_generate_componentwise(pair in (0u64..4, -1.0f64..0.0)) {
            prop_assert!(pair.0 < 4 && pair.1 < 0.0);
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 3..=3usize);
        let mut a = crate::test_runner::TestRng::deterministic("t", 5);
        let mut b = crate::test_runner::TestRng::deterministic("t", 5);
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
    }

    #[test]
    fn env_knob_overrides_case_count() {
        use crate::test_runner::resolve_cases;
        assert_eq!(resolve_cases(Some("2048"), 48), 2048);
        assert_eq!(resolve_cases(Some(" 16 "), 48), 16);
        assert_eq!(resolve_cases(Some("not-a-number"), 48), 48);
        assert_eq!(resolve_cases(Some("0"), 48), 48);
        assert_eq!(resolve_cases(Some(""), 48), 48);
        assert_eq!(resolve_cases(None, 48), 48);
    }
}
