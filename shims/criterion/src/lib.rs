//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment of this repository has no network access, so the
//! real criterion cannot be fetched from crates.io. This shim implements the
//! subset the workspace's benches use — `Criterion` configuration,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter` and the `criterion_group!` / `criterion_main!` macros —
//! as a small wall-clock harness that prints per-benchmark medians. It has
//! no statistics engine, plots or baselines; it exists so `cargo bench`
//! compiles, runs and reports coarse scaling numbers offline.
//!
//! Swapping the real criterion back in is a one-line change in the workspace
//! manifest; no bench sources need to change.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness configuration and top-level entry point, mirroring
/// `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the routine before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Upper bound on the time spent measuring one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label;
        let report = run_bench(self, &mut f);
        print_report(&label, &report);
        self
    }

    /// Benchmarks a routine with a borrowed input, outside any group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into().label;
        let report = run_bench(self, &mut |b: &mut Bencher| f(b, input));
        print_report(&label, &report);
        self
    }
}

/// A named collection of benchmarks sharing the parent configuration,
/// mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks a routine within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let report = run_bench(self.criterion, &mut f);
        print_report(&label, &report);
        self
    }

    /// Benchmarks a routine with a borrowed input within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let report = run_bench(self.criterion, &mut |b: &mut Bencher| f(b, input));
        print_report(&label, &report);
        self
    }

    /// Ends the group (a no-op in this shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark case, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing driver handed to benchmark closures, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine`, retaining per-sample wall-clock
    /// durations. The routine's return value is passed through
    /// [`black_box`] so the optimiser cannot elide the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            black_box(routine());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let deadline = Instant::now() + self.measurement_time;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

struct Report {
    median: Duration,
    min: Duration,
    max: Duration,
    samples: usize,
}

fn run_bench(config: &Criterion, f: &mut dyn FnMut(&mut Bencher)) -> Report {
    let mut bencher = Bencher {
        sample_size: config.sample_size,
        warm_up_time: config.warm_up_time,
        measurement_time: config.measurement_time,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        // `Bencher::iter` was never called; report a zero-duration run.
        samples.push(Duration::ZERO);
    }
    samples.sort_unstable();
    Report {
        median: samples[samples.len() / 2],
        min: samples[0],
        max: samples[samples.len() - 1],
        samples: samples.len(),
    }
}

fn print_report(label: &str, report: &Report) {
    println!(
        "{label:<50} time: [{} {} {}] ({} samples)",
        fmt_duration(report.min),
        fmt_duration(report.median),
        fmt_duration(report.max),
        report.samples,
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Builds a benchmark-group function from a list of target functions,
/// mirroring `criterion::criterion_group!`. Both the plain and the
/// `name = …; config = …; targets = …` forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Expands to `fn main` running every listed group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_inputs_work() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("case", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| black_box(2) * 2));
        group.finish();
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
