//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no network access, so the
//! real rand cannot be fetched from crates.io. This shim provides the rand
//! 0.8 surface the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer and
//! float ranges — backed by the xoshiro256++ generator with SplitMix64
//! seeding. Every stream is fully deterministic for a given seed, which is
//! exactly what the reproduction experiments rely on.
//!
//! Swapping the real rand back in is a one-line change in the workspace
//! manifest; no call sites need to change.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`low..high` or `low..=high`).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen_range(0.0..1.0) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction from a 64-bit seed, mirroring
/// `rand::SeedableRng` (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let x = self.start + (self.end - self.start) * unit_f64(rng);
        // FP rounding can land exactly on the excluded end for
        // large-magnitude bounds; clamp to keep the half-open contract.
        if x < self.end {
            x
        } else {
            self.end.next_down()
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Debiased multiply-shift (Lemire): reject when the low product word
    // falls under 2^64 mod span; vanishingly rare for small spans.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) < threshold {
            continue;
        }
        return (m >> 64) as u64;
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic pseudo-random generator (xoshiro256++ under the hood,
    /// standing in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as the rand_core docs suggest.
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u = rng.gen_range(3..9usize);
            assert!((3..9).contains(&u));
            let i = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&i));
        }
    }

    #[test]
    fn small_int_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_never_returns_excluded_end() {
        // Large-magnitude bounds: rounding in start + span·u can land on the
        // excluded end (ulp at 1e16 is 2.0), which the clamp must prevent.
        let mut rng = StdRng::seed_from_u64(3);
        let (lo, hi) = (1e16, 1e16 + 4.0);
        for _ in 0..100_000 {
            let x = rng.gen_range(lo..hi);
            assert!(x >= lo && x < hi, "{x} outside [{lo}, {hi})");
        }
    }

    #[test]
    fn float_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
